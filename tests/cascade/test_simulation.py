"""CascadeSimulation end-to-end: dispatch, accounting, determinism."""

from __future__ import annotations

import pytest

from repro.cascade import (
    CascadeConfig,
    CascadeSimulation,
    Tier,
    TierBudget,
    run_cascade_simulation,
)
from repro.core.pipeline import ExperimentConfig
from repro.des.kernel import Simulator
from repro.obs import MetricsRegistry
from repro.topology.clos import ClosParams, build_clos

#: A scenario that reliably produces promotions: tight K-S budget,
#: fast epochs, small score windows.
EXPERIMENT = ExperimentConfig(
    clos=ClosParams(clusters=4), load=0.25, duration_s=0.006, seed=9
)
CASCADE = CascadeConfig(
    epoch_s=0.001, window_epochs=3, min_window_samples=4,
    budget=TierBudget(ks=0.2),
)


@pytest.fixture(scope="module")
def cascade_run(trained_bundle):
    metrics = MetricsRegistry(enabled=True)
    result, cascade_sim = run_cascade_simulation(
        EXPERIMENT, trained_bundle, cascade=CASCADE, metrics=metrics
    )
    return result, cascade_sim, metrics


class TestDispatch:
    """Tier-routing of new flows, on an unstarted cascade."""

    @pytest.fixture()
    def fresh(self, trained_bundle):
        sim = Simulator(seed=5)
        topology = build_clos(ClosParams(clusters=4))
        return CascadeSimulation(sim, topology, trained_bundle, config=CASCADE)

    def test_focal_cluster_is_des(self, fresh):
        assert fresh.tier_of(CASCADE.focal_cluster) is Tier.DES
        for region in fresh.regions:
            assert fresh.tier_of(region) is Tier.FLOWSIM

    def test_background_flow_diverted_to_fluid(self, fresh):
        claimed = fresh.dispatch_flow(
            "server-c1-t0-s0", "server-c2-t0-s0", 10_000
        )
        assert claimed is True
        assert fresh.fluid.active_flows == 1

    def test_focal_flow_stays_on_packet_path(self, fresh):
        claimed = fresh.dispatch_flow(
            "server-c0-t0-s0", "server-c1-t0-s0", 10_000
        )
        assert claimed is False
        assert fresh.fluid.active_flows == 0
        assert fresh.per_tier_flows()["des"] == 1

    def test_hybrid_region_flow_stays_on_packet_path(self, fresh):
        fresh.controller.tiers[1] = Tier.HYBRID
        claimed = fresh.dispatch_flow(
            "server-c1-t0-s0", "server-c2-t0-s0", 10_000
        )
        assert claimed is False
        assert fresh.per_tier_flows()["hybrid"] == 1


class TestEndToEnd:
    def test_promotions_happen(self, cascade_run):
        result, cascade_sim, _ = cascade_run
        assert result.summary["promotions"] >= 1
        assert result.summary["epochs"] >= 4

    def test_all_tiers_carry_packets(self, cascade_run):
        result, _, _ = cascade_run
        packets = result.summary["per_tier_packets"]
        assert set(packets) == {"flowsim", "hybrid", "des"}
        assert packets["des"] > 0
        assert packets["flowsim"] + packets["hybrid"] > 0

    def test_residency_accounts_every_epoch(self, cascade_run):
        result, _, _ = cascade_run
        summary = result.summary
        for region, residency in summary["tier_residency"].items():
            assert sum(residency.values()) == summary["epochs"], region
            assert residency["des"] == 0  # only the focal cluster is DES

    def test_diverted_flows_equal_fluid_admissions(self, cascade_run):
        result, _, _ = cascade_run
        summary = result.summary
        assert summary["flows_diverted"] > 0
        assert summary["flows_diverted"] == summary["fluid"]["flows_admitted"]

    def test_fluid_fcts_counted_separately(self, cascade_run):
        result, _, _ = cascade_run
        fluid = result.summary["fluid"]
        assert len(result.fluid_fcts) == fluid["flows_completed"]
        assert result.total_flows_completed == (
            result.result.flows_completed + fluid["flows_completed"]
        )

    def test_promote_decisions_carry_handoffs(self, cascade_run):
        _, cascade_sim, _ = cascade_run
        promotes = [
            e for e in cascade_sim.decision_log.entries
            if e["kind"] == "promote"
        ]
        assert promotes
        for entry in promotes:
            handoff = entry["handoff"]
            assert handoff is not None
            assert handoff["from"] == "flowsim" and handoff["to"] == "hybrid"
            assert handoff["flows_transferred"] >= 0

    def test_controller_counters_published(self, cascade_run):
        result, _, metrics = cascade_run
        counters = {
            c["name"]: c["value"] for c in metrics.snapshot()["counters"]
        }
        assert counters["cascade.epochs"] == result.summary["epochs"]
        assert counters["cascade.promotions"] == result.summary["promotions"]
        assert counters["flowsim.flows_completed"] == (
            result.summary["fluid"]["flows_completed"]
        )

    def test_cascade_tier_probes_sampled(self, cascade_run):
        _, _, metrics = cascade_run
        samples = metrics.snapshot()["probes"]["samples"]
        tier_samples = [s for s in samples if s["name"] == "cascade_tier"]
        assert tier_samples
        values = {s["value"] for s in tier_samples}
        # At least one region was observed at each runtime tier.
        assert float(Tier.FLOWSIM.value) in values
        assert float(Tier.HYBRID.value) in values


class TestDeterminism:
    def test_same_seed_byte_identical_decisions(self, cascade_run, trained_bundle):
        result, cascade_sim, _ = cascade_run
        rerun, rerun_sim = run_cascade_simulation(
            EXPERIMENT, trained_bundle, cascade=CASCADE
        )
        assert (
            rerun_sim.decision_log.to_json()
            == cascade_sim.decision_log.to_json()
        )
        assert rerun.summary == result.summary
        assert rerun.fluid_fcts == result.fluid_fcts
        assert rerun.result.fcts == result.result.fcts
