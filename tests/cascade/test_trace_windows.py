"""Flow-aware scoring windows and cascade tracing.

Satellite 2 of the tracing PR: every DecisionLog entry names the flows
whose FCT samples sat in the region's scoring window when the decision
fired (``window_flows``), so an operator can jump from a promote record
straight to ``repro trace show`` for the flows that triggered it.  The
tentpole side: a traced cascade records ``tier.dispatch`` for every
fluid diversion, ``tier.handoff`` for every adapter transition, and
fluid completions — without perturbing the (byte-identical) decision
log.
"""

from __future__ import annotations

import pytest

from repro.cascade import CascadeConfig, TierBudget, run_cascade_simulation
from repro.core.pipeline import ExperimentConfig
from repro.obs.trace import FlightRecorder, trace_id
from repro.topology.clos import ClosParams
from repro.validate.windows import RegionWindows, SlidingWindow

EXPERIMENT = ExperimentConfig(
    clos=ClosParams(clusters=4), load=0.25, duration_s=0.006, seed=9
)
CASCADE = CascadeConfig(
    epoch_s=0.001, window_epochs=3, min_window_samples=4,
    budget=TierBudget(ks=0.2),
)


# ----------------------------------------------------------------------
# Window plumbing (unit level)
# ----------------------------------------------------------------------
class TestWindowTags:
    def test_tags_follow_samples_and_evict_together(self):
        window = SlidingWindow()
        window.add(0.0, 10.0, tag="flow:0")
        window.add(0.5, 20.0)  # untagged samples are legal
        window.add(1.0, 30.0, tag="fluid:2")
        assert window.tags() == ["flow:0", "fluid:2"]
        window.evict_before(0.25)
        assert window.values() == [20.0, 30.0]
        assert window.tags() == ["fluid:2"]

    def test_window_flows_sorted_unique(self):
        windows = RegionWindows()
        windows.record_fct(0.0, 0.1, flow="fluid:3")
        windows.record_fct(0.1, 0.2, flow="flow:1")
        windows.record_fct(0.2, 0.3, flow="fluid:3")
        windows.record_fct(0.3, 0.4)  # anonymous sample
        assert windows.window_flows() == ["flow:1", "fluid:3"]
        windows.evict_before(0.15)  # drops flow:1 and the first fluid:3
        assert windows.window_flows() == ["fluid:3"]


# ----------------------------------------------------------------------
# End-to-end: traced cascade run (module-cached, it promotes reliably)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_cascade(trained_bundle):
    # Capacity far above the run's record count: the assertions below
    # reason about *all* records, so nothing may fall off the ring.
    tracer = FlightRecorder(seed=EXPERIMENT.seed, capacity=1_000_000)
    result, cascade_sim = run_cascade_simulation(
        EXPERIMENT, trained_bundle, cascade=CASCADE, tracer=tracer
    )
    return result, cascade_sim, tracer


class TestDecisionWindowFlows:
    def test_every_decision_names_its_window_flows(self, traced_cascade):
        _, cascade_sim, _ = traced_cascade
        entries = cascade_sim.controller.log.entries
        assert entries, "scenario produced no decisions"
        for entry in entries:
            assert "window_flows" in entry
            for name in entry["window_flows"]:
                domain, _, flow = name.partition(":")
                assert domain in ("flow", "fluid") and flow.isdigit()
            assert entry["window_flows"] == sorted(entry["window_flows"])

    def test_some_decision_scored_fluid_flows(self, traced_cascade):
        """Promotions fire while regions run the fluid tier, so fluid
        flow names must reach at least one entry's scoring window."""
        _, cascade_sim, _ = traced_cascade
        named = [
            name
            for entry in cascade_sim.controller.log.entries
            for name in entry["window_flows"]
        ]
        assert any(name.startswith("fluid:") for name in named)


class TestCascadeTraceRecords:
    def test_fluid_dispatch_and_completion_traced(self, traced_cascade):
        _, cascade_sim, tracer = traced_cascade
        records = tracer.records()
        dispatches = [r for r in records if r["name"] == "tier.dispatch"]
        assert dispatches, "no fluid diversion was traced"
        assert all(r["args"]["tier"] == "flowsim" for r in dispatches)
        # Fluid flows trace under the "fluid" id domain, ids dense from 0.
        fluid_ids = {
            trace_id(EXPERIMENT.seed, n, "fluid")
            for n in range(cascade_sim._next_fluid_flow_id)
        }
        assert {r["trace"] for r in dispatches} <= fluid_ids
        completions = [
            r
            for r in records
            if r["name"] == "flow.complete" and r["trace"] in fluid_ids
        ]
        assert completions, "no fluid completion was traced"
        assert all("fct" in r["args"] for r in completions)

    def test_handoffs_traced_per_transition(self, traced_cascade):
        _, cascade_sim, tracer = traced_cascade
        handoffs = [
            r for r in tracer.records() if r["name"] == "tier.handoff"
        ]
        transitions = [
            e
            for e in cascade_sim.controller.log.entries
            if e["kind"] in ("promote", "demote")
        ]
        assert len(handoffs) == len(transitions)
        for record in handoffs:
            assert record["args"]["kind"] in ("promote", "demote")
            assert record["args"]["from_tier"] != record["args"]["to_tier"]

    def test_tracing_leaves_decision_log_byte_identical(
        self, traced_cascade, trained_bundle
    ):
        _, cascade_sim, _ = traced_cascade
        untraced_result, untraced_sim = run_cascade_simulation(
            EXPERIMENT, trained_bundle, cascade=CASCADE
        )
        assert (
            untraced_sim.controller.log.to_json()
            == cascade_sim.controller.log.to_json()
        )
