"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.kernel import Simulator
from repro.topology.clos import ClosParams, build_clos
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.topology.routing import EcmpRouting


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def small_clos():
    """The paper's evaluation cluster shape, 2 clusters (session-cached)."""
    return build_clos(ClosParams(clusters=2))


@pytest.fixture(scope="session")
def small_clos_routing(small_clos):
    """ECMP tables for the small Clos (session-cached)."""
    return EcmpRouting(small_clos)


@pytest.fixture(scope="session")
def tiny_leafspine():
    """A 2x2 leaf-spine with 2 servers per rack (session-cached)."""
    return build_leaf_spine(LeafSpineParams(tors=2, spines=2, servers_per_tor=2))
