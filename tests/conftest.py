"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig, train_reusable_model
from repro.des.kernel import Simulator
from repro.topology.clos import ClosParams, build_clos
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.topology.routing import EcmpRouting

#: Shared fast-training shape for the session-scoped trained bundle.
#: Small but real: enough batches that drop/latency heads are usable
#: by hybrid end-to-end tests, small enough to train in about a second.
FAST_MICRO = MicroModelConfig(hidden_size=16, num_layers=1, window=8, train_batches=40)

#: The collection run the shared bundle is trained on.
TRAIN_CONFIG = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.25, duration_s=0.006, seed=21
)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def small_clos():
    """The paper's evaluation cluster shape, 2 clusters (session-cached)."""
    return build_clos(ClosParams(clusters=2))


@pytest.fixture(scope="session")
def small_clos_routing(small_clos):
    """ECMP tables for the small Clos (session-cached)."""
    return EcmpRouting(small_clos)


@pytest.fixture(scope="session")
def trained_bundle():
    """One real trained cluster model shared by the whole session.

    Training is the most expensive fixture in the suite (~1 s); hybrid,
    inference, and observability tests all need *a* trained bundle but
    none of them cares about its exact weights, so one session-scoped
    model replaces the per-module copies.  Tests must treat it as
    read-only (each hybrid run builds its own engines and hidden
    states, so sharing the bundle is safe).
    """
    trained, _ = train_reusable_model(TRAIN_CONFIG, micro=FAST_MICRO)
    return trained


@pytest.fixture(scope="session")
def tiny_leafspine():
    """A 2x2 leaf-spine with 2 servers per rack (session-cached)."""
    return build_leaf_spine(LeafSpineParams(tors=2, spines=2, servers_per_tor=2))
