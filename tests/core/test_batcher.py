"""Event-horizon batching integration tests (ISSUE 6 tentpole).

The acceptance criterion: a float64 hybrid run with the batching
window (and with exact-mode memoization) produces *identical
simulation outcomes* to the per-packet scalar path — same drops, same
RTT samples, same FCTs, same model decisions.  The kernel event count
differs only by the flush events themselves, which carry no state.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridConfig
from repro.core.pipeline import ExperimentConfig, run_hybrid_simulation
from repro.topology.clos import ClosParams

CONFIG = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.25, duration_s=0.003, seed=26
)

COUNTER_KEYS = {
    "batched_rounds",
    "batched_packets",
    "batch_flushes",
    "scalar_fallbacks",
    "memo_hits",
    "memo_misses",
    "memo_hit_rate",
}


def _outcomes(result):
    return (
        result.drops,
        result.rtt_samples,
        result.fcts,
        result.model_packets,
        result.model_drops,
        result.flows_completed,
    )


class TestBatchedEventIdentity:
    def test_batched_float64_matches_scalar_path(self, trained_bundle):
        scalar, _ = run_hybrid_simulation(CONFIG, trained_bundle)
        batched, hybrid_sim = run_hybrid_simulation(
            CONFIG, trained_bundle, hybrid=HybridConfig(batch_window_s=1e-6)
        )
        assert _outcomes(batched) == _outcomes(scalar)
        counters = hybrid_sim.hot_path_counters(batched.wallclock_seconds)
        # Every model packet went through the batcher, none were lost.
        assert counters["batched_packets"] == batched.model_packets > 0
        assert counters["batched_rounds"] > 0
        assert counters["batch_flushes"] > 0
        # The extra kernel events are exactly the window-flush events
        # (the end-of-run drain is a direct call, not an event).
        assert batched.events_executed > scalar.events_executed

    def test_batched_with_exact_memo_matches_scalar_path(self, trained_bundle):
        scalar, _ = run_hybrid_simulation(CONFIG, trained_bundle)
        memoized, hybrid_sim = run_hybrid_simulation(
            CONFIG,
            trained_bundle,
            hybrid=HybridConfig(batch_window_s=1e-6, memoize_inference=True),
        )
        assert _outcomes(memoized) == _outcomes(scalar)
        counters = hybrid_sim.hot_path_counters(memoized.wallclock_seconds)
        assert counters["memo_hits"] + counters["memo_misses"] == (
            memoized.model_packets
        )

    def test_batched_run_is_deterministic(self, trained_bundle):
        hc = HybridConfig(batch_window_s=1e-6, memoize_inference=True)
        r1, _ = run_hybrid_simulation(CONFIG, trained_bundle, hybrid=hc)
        r2, _ = run_hybrid_simulation(CONFIG, trained_bundle, hybrid=hc)
        assert _outcomes(r1) == _outcomes(r2)
        assert r1.events_executed == r2.events_executed

    def test_approximate_memo_stays_in_latency_bounds(self, trained_bundle):
        """exact=False is allowed to perturb outcomes (it is gated by
        the fidelity harness, not by exactness) but every decision
        still flows through the clamps and invariant checks."""
        result, hybrid_sim = run_hybrid_simulation(
            CONFIG,
            trained_bundle,
            hybrid=HybridConfig(
                batch_window_s=1e-6, memoize_inference=True, memo_exact=False
            ),
        )
        assert result.model_packets > 0
        for sample in result.rtt_samples:
            assert sample > 0.0

    def test_float32_batched_close_to_scalar_float32(self, trained_bundle):
        scalar, _ = run_hybrid_simulation(
            CONFIG, trained_bundle, hybrid=HybridConfig(inference_dtype="float32")
        )
        batched, _ = run_hybrid_simulation(
            CONFIG,
            trained_bundle,
            hybrid=HybridConfig(inference_dtype="float32", batch_window_s=1e-6),
        )
        # float32 batching reassociates GEMMs: within-tolerance, and
        # the packet/drop totals must still agree on this short run.
        assert batched.model_packets == scalar.model_packets
        assert batched.model_drops == scalar.model_drops


class TestBatcherConfiguration:
    def test_counters_schema_without_batching(self, trained_bundle):
        result, hybrid_sim = run_hybrid_simulation(CONFIG, trained_bundle)
        counters = hybrid_sim.hot_path_counters(result.wallclock_seconds)
        assert COUNTER_KEYS <= set(counters)
        assert all(counters[key] == 0.0 for key in COUNTER_KEYS)

    def test_window_requires_fused_inference(self, trained_bundle):
        from repro.core.hybrid import HybridSimulation
        from repro.des.kernel import Simulator
        from repro.topology.clos import build_clos

        with pytest.raises(ValueError, match="fused"):
            HybridSimulation(
                Simulator(seed=1),
                build_clos(ClosParams(clusters=2)),
                trained_bundle,
                config=HybridConfig(
                    use_fused_inference=False, batch_window_s=1e-6
                ),
            )

    def test_batcher_rejects_nonpositive_window(self):
        from repro.core.batcher import InferenceBatcher
        from repro.des.kernel import Simulator

        with pytest.raises(ValueError):
            InferenceBatcher(Simulator(seed=1), 0.0)

    def test_window_clamped_to_causal_horizon(self):
        from repro.core.batcher import InferenceBatcher
        from repro.core.cluster_model import MIN_REGION_LATENCY_S
        from repro.des.kernel import Simulator

        batcher = InferenceBatcher(Simulator(seed=1), 1.0)
        assert batcher.window_s == MIN_REGION_LATENCY_S


class TestValidateWithBatching:
    def test_differential_pair_clean_with_batching_and_memo(self, trained_bundle):
        from repro.validate import ValidateConfig, run_differential_pair

        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.003, seed=91
        )
        plain = run_differential_pair(config, trained_bundle)
        plain.checker.assert_clean()
        batched = run_differential_pair(
            config,
            trained_bundle,
            validate=ValidateConfig(batch_window_s=1e-6, memoize_inference=True),
        )
        batched.checker.assert_clean()
        assert batched.checker.violations == []
        # Exact-mode memo + batching changes nothing the report can see.
        assert batched.report.to_dict() == plain.report.to_dict()
