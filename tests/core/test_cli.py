"""Tests for the command-line interface (in-process, via main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.clusters == 2
        assert args.load == 0.25


class TestInfo:
    def test_lists_features(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro " in out
        assert "gap_log_us" in out
        assert "macro_minimal" in out


class TestSimulate:
    def test_runs_and_reports(self, capsys):
        code = main([
            "simulate", "--clusters", "2", "--load", "0.15",
            "--duration", "0.002", "--seed", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "full simulation" in out
        assert "events executed" in out
        assert "flows started" in out

    def test_trace_csv(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.csv"
        code = main([
            "simulate", "--duration", "0.001", "--load", "0.1",
            "--trace-csv", str(trace_path),
        ])
        assert code == 0
        assert trace_path.exists()
        header = trace_path.read_text().splitlines()[0]
        assert header.startswith("time,kind")


class TestTrainAndHybrid:
    def test_full_cli_workflow(self, tmp_path, capsys):
        model_dir = tmp_path / "model"
        code = main([
            "train", "--clusters", "2", "--load", "0.25",
            "--duration", "0.005", "--seed", "12",
            "--output", str(model_dir),
            "--hidden", "16", "--layers", "1", "--batches", "20",
        ])
        assert code == 0
        assert (model_dir / "bundle.json").exists()
        out = capsys.readouterr().out
        assert "saved model bundle" in out

        code = main([
            "hybrid", "--model", str(model_dir),
            "--clusters", "4", "--duration", "0.002", "--seed", "13",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hybrid simulation (per-cluster)" in out
        assert "model packets" in out

    def test_hybrid_missing_model_exits_2(self, tmp_path, capsys):
        code = main([
            "hybrid", "--model", str(tmp_path / "nope"), "--duration", "0.001",
        ])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_evaluate_subcommand(self, tmp_path, capsys):
        model_dir = tmp_path / "eval_model"
        assert main([
            "train", "--duration", "0.005", "--seed", "15",
            "--output", str(model_dir), "--hidden", "16", "--batches", "20",
        ]) == 0
        capsys.readouterr()
        code = main([
            "evaluate", "--model", str(model_dir),
            "--duration", "0.004", "--seed", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "drop_pred" in out
        assert "ingress" in out

    def test_gru_training_via_cli(self, tmp_path):
        model_dir = tmp_path / "gru_model"
        code = main([
            "train", "--duration", "0.004", "--seed", "14",
            "--output", str(model_dir), "--cell", "gru",
            "--hidden", "16", "--batches", "10",
        ])
        assert code == 0
        import json

        meta = json.loads((model_dir / "bundle.json").read_text())
        assert meta["config"]["cell"] == "gru"
