"""Tests for the command-line interface (in-process, via main())."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.clusters == 2
        assert args.load == 0.25


class TestInfo:
    def test_lists_features(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro " in out
        assert "gap_log_us" in out
        assert "macro_minimal" in out


class TestSimulate:
    def test_runs_and_reports(self, capsys):
        code = main([
            "simulate", "--clusters", "2", "--load", "0.15",
            "--duration", "0.002", "--seed", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "full simulation" in out
        assert "events executed" in out
        assert "flows started" in out

    def test_trace_csv(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.csv"
        code = main([
            "simulate", "--duration", "0.001", "--load", "0.1",
            "--trace-csv", str(trace_path),
        ])
        assert code == 0
        assert trace_path.exists()
        header = trace_path.read_text().splitlines()[0]
        assert header.startswith("time,kind")


class TestTrainAndHybrid:
    def test_full_cli_workflow(self, tmp_path, capsys):
        model_dir = tmp_path / "model"
        code = main([
            "train", "--clusters", "2", "--load", "0.25",
            "--duration", "0.005", "--seed", "12",
            "--output", str(model_dir),
            "--hidden", "16", "--layers", "1", "--batches", "20",
        ])
        assert code == 0
        assert (model_dir / "bundle.json").exists()
        out = capsys.readouterr().out
        assert "saved model bundle" in out

        code = main([
            "hybrid", "--model", str(model_dir),
            "--clusters", "4", "--duration", "0.002", "--seed", "13",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hybrid simulation (per-cluster)" in out
        assert "model packets" in out

    def test_hybrid_missing_model_exits_2(self, tmp_path, capsys):
        code = main([
            "hybrid", "--model", str(tmp_path / "nope"), "--duration", "0.001",
        ])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_evaluate_subcommand(self, tmp_path, capsys):
        model_dir = tmp_path / "eval_model"
        assert main([
            "train", "--duration", "0.005", "--seed", "15",
            "--output", str(model_dir), "--hidden", "16", "--batches", "20",
        ]) == 0
        capsys.readouterr()
        code = main([
            "evaluate", "--model", str(model_dir),
            "--duration", "0.004", "--seed", "16",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "drop_pred" in out
        assert "ingress" in out

class TestFlowsim:
    def test_generated_workload(self, capsys):
        code = main([
            "flowsim", "--clusters", "2", "--load", "0.2",
            "--duration", "0.01", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "flow-level simulation" in out
        assert "rate recomputes" in out
        assert "FCT (ms)" in out

    def test_workload_file(self, tmp_path, capsys):
        from repro.flowsim.workload import generate_workload, save_workload
        from repro.topology.clos import ClosParams, build_clos
        from repro.traffic.distributions import web_search_sizes

        topology = build_clos(ClosParams(clusters=2))
        flows = generate_workload(
            topology, duration_s=0.005, load=0.2,
            sizes=web_search_sizes(), seed=3,
        )
        path = tmp_path / "workload.json"
        save_workload(flows, path)
        code = main(["flowsim", str(path), "--clusters", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"flows simulated    {len(flows)}" in out

    def test_bad_workload_file_exits_2(self, tmp_path, capsys):
        code = main(["flowsim", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load workload" in capsys.readouterr().err

    def test_metrics_export(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        code = main([
            "flowsim", "--duration", "0.005", "--load", "0.2",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        assert metrics_path.exists()
        assert "flowsim.flows_completed" in metrics_path.read_text()


class TestCascade:
    @pytest.fixture()
    def model_dir(self, tmp_path, trained_bundle):
        path = tmp_path / "bundle"
        trained_bundle.save(path)
        return path

    def test_cascade_run_reports_tiers(self, model_dir, tmp_path, capsys):
        log_path = tmp_path / "decisions.json"
        code = main([
            "cascade", "--model", str(model_dir),
            "--clusters", "3", "--duration", "0.003", "--seed", "9",
            "--epoch-s", "0.001", "--budget", "0.2",
            "--min-window-samples", "4",
            "--decision-log", str(log_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cascade simulation" in out
        assert "controller:" in out
        assert "final tier" in out
        assert "fluid tier:" in out
        assert log_path.exists()

    def test_pin_tier_parsing(self, model_dir, capsys):
        code = main([
            "cascade", "--model", str(model_dir),
            "--clusters", "3", "--duration", "0.002", "--seed", "9",
            "--pin-tier", "2=hybrid",
        ])
        assert code == 0

    def test_bad_pin_tier_exits_2(self, model_dir, capsys):
        code = main([
            "cascade", "--model", str(model_dir),
            "--duration", "0.001", "--pin-tier", "2:hybrid",
        ])
        assert code == 2
        assert "REGION=TIER" in capsys.readouterr().err

    def test_pin_to_des_rejected(self, model_dir, capsys):
        code = main([
            "cascade", "--model", str(model_dir), "--clusters", "3",
            "--duration", "0.001", "--pin-tier", "2=des",
        ])
        assert code == 2
        assert "cannot pin region 2 to des" in capsys.readouterr().err

    def test_missing_model_exits_2(self, tmp_path, capsys):
        code = main([
            "cascade", "--model", str(tmp_path / "nope"),
            "--duration", "0.001",
        ])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err


class TestTrainGru:
    def test_gru_training_via_cli(self, tmp_path):
        model_dir = tmp_path / "gru_model"
        code = main([
            "train", "--duration", "0.004", "--seed", "14",
            "--output", str(model_dir), "--cell", "gru",
            "--hidden", "16", "--batches", "10",
        ])
        assert code == 0
        import json

        meta = json.loads((model_dir / "bundle.json").read_text())
        assert meta["config"]["cell"] == "gru"
