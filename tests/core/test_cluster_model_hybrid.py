"""Tests for the approximated-cluster entity and hybrid assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster_model import MIN_REGION_LATENCY_S
from repro.core.hybrid import HybridConfig, HybridSimulation
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.topology.clos import ClosParams, build_clos, server_name

# The trained model comes from the session-scoped ``trained_bundle``
# fixture (tests/conftest.py) shared with the inference and obs tests.


class TestHybridAssembly:
    def test_structure(self, trained_bundle):
        from repro.des.kernel import Simulator

        topo = build_clos(ClosParams(clusters=4))
        sim = Simulator(seed=1)
        hybrid = HybridSimulation(sim, topo, trained_bundle)
        # Full cluster 0 keeps its switches; clusters 1..3 approximated.
        assert "tor-c0-0" in hybrid.network.switches
        assert "tor-c1-0" not in hybrid.network.switches
        assert set(hybrid.models) == {1, 2, 3}
        # Core switches always real.
        assert "core-0" in hybrid.network.switches
        # All hosts real (full TCP stacks, paper Section 5).
        assert len(hybrid.network.hosts) == 32

    def test_flow_filter(self, trained_bundle):
        from repro.des.kernel import Simulator

        topo = build_clos(ClosParams(clusters=4))
        hybrid = HybridSimulation(Simulator(seed=1), topo, trained_bundle)
        keep = hybrid.flow_filter
        assert keep(server_name(0, 0, 0), server_name(2, 0, 0))
        assert keep(server_name(3, 0, 0), server_name(0, 0, 0))
        assert not keep(server_name(1, 0, 0), server_name(2, 0, 0))

    def test_flow_filter_disabled(self, trained_bundle):
        from repro.des.kernel import Simulator

        topo = build_clos(ClosParams(clusters=4))
        hybrid = HybridSimulation(
            Simulator(seed=1), topo, trained_bundle,
            config=HybridConfig(elide_remote_traffic=False),
        )
        assert hybrid.flow_filter(server_name(1, 0, 0), server_name(2, 0, 0))

    def test_invalid_full_cluster(self, trained_bundle):
        from repro.des.kernel import Simulator

        topo = build_clos(ClosParams(clusters=2))
        with pytest.raises(ValueError):
            HybridSimulation(
                Simulator(), topo, trained_bundle, config=HybridConfig(full_cluster=9)
            )


class TestHybridExecution:
    def test_end_to_end_run(self, trained_bundle):
        config = ExperimentConfig(
            clos=ClosParams(clusters=4), load=0.25, duration_s=0.004, seed=22
        )
        result, hybrid = run_hybrid_simulation(config, trained_bundle)
        assert result.model_packets > 0
        assert result.flows_elided > 0
        assert result.flows_completed > 0
        assert len(result.rtt_samples) > 0
        # Model predictions respect the physical floor, and the
        # streaming stats cover every delivered packet.
        for model in hybrid.models.values():
            stats = model.latency_stats
            assert stats.count == model.packets_delivered
            if stats.count:
                assert stats.min >= MIN_REGION_LATENCY_S
                for latency in stats.sample:
                    assert latency >= MIN_REGION_LATENCY_S
        # The hot-path counters account for real inference work.
        assert hybrid.inference_seconds() > 0.0
        counters = hybrid.hot_path_counters(wallclock_s=result.wallclock_seconds)
        assert counters["model_packets"] == result.model_packets
        assert 0.0 < counters["inference_share"] <= 1.0
        assert result.model_inference_seconds == hybrid.inference_seconds()

    def test_resolve_conflict_fcfs_serialization(self, trained_bundle):
        """Section 4.2: two packets can never egress the same target
        within one serialization time; the first-processed packet keeps
        its slot and conflicts are pushed to the next possible time."""
        from repro.des.kernel import Simulator
        from repro.net.packet import Packet

        topo = build_clos(ClosParams(clusters=2))
        hybrid = HybridSimulation(Simulator(seed=3), topo, trained_bundle)
        model = hybrid.models[1]
        target = server_name(1, 0, 0)
        packet = Packet(src="a", dst="b", src_port=1, dst_port=2, payload_bytes=1460)
        serialization = packet.size_bytes * 8.0 / model._egress_link_rate(target)

        # Burst of conflicting requests: same target, same instant.
        granted = [model._resolve_conflict(target, 1e-3, packet) for _ in range(20)]
        assert granted[0] == 1e-3  # first-come keeps its slot
        for earlier, later in zip(granted, granted[1:]):
            assert later - earlier >= serialization * (1 - 1e-12)
        assert model.conflicts_resolved >= 19

        # A request far in the future is not delayed...
        assert model._resolve_conflict(target, 1.0, packet) == 1.0
        # ...and other targets are independent.
        other = server_name(1, 0, 1)
        assert model._resolve_conflict(other, 1e-3, packet) == 1e-3

    def test_conflict_resolution_orders_deliveries(self, trained_bundle):
        """Per egress node, deliveries are strictly separated by at
        least the serialization time (paper Section 4.2)."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.35, duration_s=0.004, seed=23
        )
        result, hybrid = run_hybrid_simulation(config, trained_bundle)
        model = hybrid.models[1]
        assert model.packets_handled > 0
        # The invariant is enforced internally; check bookkeeping is sane.
        assert model.packets_delivered + model.packets_dropped == model.packets_handled

    def test_hybrid_elides_fabric_events(self, trained_bundle):
        """With traffic elision OFF, both runs carry the identical flow
        schedule, so the hybrid's event count must be strictly lower:
        each approximated-fabric traversal is one delivery event
        instead of a dozen queue/transmit/propagate events."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=4), load=0.25, duration_s=0.004, seed=24
        )
        full = run_full_simulation(config).result
        hybrid_result, _ = run_hybrid_simulation(
            config, trained_bundle, hybrid=HybridConfig(elide_remote_traffic=False)
        )
        assert hybrid_result.flows_started == full.flows_started
        assert hybrid_result.flows_elided == 0
        assert hybrid_result.events_executed < full.events_executed

    def test_fused_engine_matches_reference_path_end_to_end(self, trained_bundle):
        """A float64 fused run reproduces the reference predict_step
        run: same drop decisions, same event schedule, RTTs equal to
        within the 1e-9 engine tolerance."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.003, seed=26
        )
        fused, _ = run_hybrid_simulation(config, trained_bundle)
        reference, _ = run_hybrid_simulation(
            config, trained_bundle, hybrid=HybridConfig(use_fused_inference=False)
        )
        assert fused.model_packets == reference.model_packets
        assert fused.model_drops == reference.model_drops
        assert fused.events_executed == reference.events_executed
        assert fused.rtt_samples == pytest.approx(reference.rtt_samples, abs=1e-9)

    def test_deterministic(self, trained_bundle):
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.003, seed=25
        )
        r1, _ = run_hybrid_simulation(config, trained_bundle)
        r2, _ = run_hybrid_simulation(config, trained_bundle)
        assert r1.events_executed == r2.events_executed
        assert r1.rtt_samples == r2.rtt_samples
        assert r1.model_packets == r2.model_packets


class TestEgressLinkRate:
    """Regression: the egress-rate fallback was a hardcoded 10 Gb/s,
    mis-sizing conflict serialization on any other link speed."""

    def _model(self, trained_bundle, rate_bps):
        from repro.des.kernel import Simulator

        topo = build_clos(ClosParams(clusters=2, rate_bps=rate_bps))
        hybrid = HybridSimulation(Simulator(seed=3), topo, trained_bundle)
        return hybrid.models[1]

    def test_region_facing_rate_from_topology(self, trained_bundle):
        model = self._model(trained_bundle, rate_bps=40e9)
        # A server behind the approximated cluster: its access link is
        # region-facing and carries the configured 40G, not 10G.
        assert model._egress_link_rate(server_name(1, 0, 0)) == 40e9
        assert model.rate_fallbacks == 0

    def test_fallback_derives_from_topology_not_hardcoded(self, trained_bundle):
        model = self._model(trained_bundle, rate_bps=25e9)
        # A full-cluster server has no region-facing neighbor, so the
        # fallback path runs — and must surface the topology's 25G.
        assert model._egress_link_rate(server_name(0, 0, 0)) == 25e9
        assert model.rate_fallbacks == 1
        # Cached: a second lookup is not a second fallback.
        assert model._egress_link_rate(server_name(0, 0, 0)) == 25e9
        assert model.rate_fallbacks == 1

    def test_fallback_counted_in_obs(self, trained_bundle):
        from repro.des.kernel import Simulator
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(enabled=True)
        topo = build_clos(ClosParams(clusters=2, rate_bps=25e9))
        hybrid = HybridSimulation(
            Simulator(seed=3), topo, trained_bundle, metrics=metrics
        )
        model = hybrid.models[1]
        model._egress_link_rate(server_name(0, 0, 0))
        snapshot = metrics.snapshot()
        fallbacks = [
            c for c in snapshot["counters"]
            if c["name"] == "hybrid.egress_rate_fallbacks"
        ]
        assert fallbacks and fallbacks[0]["value"] == 1
