"""Tests for offline model evaluation and the AUC helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import roc_auc
from repro.core.evaluation import evaluate_on_records
from repro.core.features import Direction, RegionFeatureExtractor
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig, run_full_simulation
from repro.core.training import train_cluster_model
from repro.topology.clos import ClosParams


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [0, 0, 1, 1]) == 1.0

    def test_inverted(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [0, 0, 1, 1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, 4000)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_average(self):
        # All scores equal -> AUC exactly 0.5 whatever the labels.
        assert roc_auc([0.5, 0.5, 0.5, 0.5], [0, 1, 0, 1]) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([0.1, 0.2], [1, 1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([0.1], [1, 0])


@pytest.fixture(scope="module")
def trained_with_holdout():
    """Train on the first 70% of a trace; hold out the rest."""
    config = ExperimentConfig(
        clos=ClosParams(clusters=2), load=0.3, duration_s=0.008, seed=71
    )
    output = run_full_simulation(config, collect_cluster=1)
    records = sorted(output.records, key=lambda r: r.entry_time)
    cut = int(len(records) * 0.7)
    train_records, test_records = records[:cut], records[cut:]
    micro = MicroModelConfig(
        hidden_size=24, num_layers=1, window=12, train_batches=150,
        learning_rate=3e-3,
    )
    topology = output.extractor.topology
    routing = output.extractor.routing
    trained = train_cluster_model(
        train_records, RegionFeatureExtractor(topology, routing, 1), config=micro
    )
    fresh_extractor = RegionFeatureExtractor(topology, routing, 1)
    return trained, test_records, fresh_extractor


class TestEvaluateOnRecords:
    def test_produces_metrics_per_direction(self, trained_with_holdout):
        trained, test_records, extractor = trained_with_holdout
        results = evaluate_on_records(trained, test_records, extractor)
        assert results
        for evaluation in results.values():
            assert evaluation.samples > 0
            assert 0.0 <= evaluation.drop_rate_predicted <= 1.0
            assert np.isfinite(evaluation.latency_log_mae)
            assert evaluation.latency_log_rmse >= evaluation.latency_log_mae

    def test_latency_predictions_in_ballpark(self, trained_with_holdout):
        """Held-out median predicted latency within ~10x of truth."""
        trained, test_records, extractor = trained_with_holdout
        results = evaluate_on_records(trained, test_records, extractor)
        evaluation = results[Direction.INGRESS]
        true_p50 = evaluation.latency_quantiles_true["p50"]
        pred_p50 = evaluation.latency_quantiles_predicted["p50"]
        assert 0.1 < pred_p50 / true_p50 < 10

    def test_drop_rate_calibrated(self, trained_with_holdout):
        """Mean predicted drop probability stays within 10x of the
        *training* base rate (the quantity base-rate initialization and
        BCE calibrate it to; a quiet hold-out window can legitimately
        contain zero drops)."""
        trained, test_records, extractor = trained_with_holdout
        results = evaluate_on_records(trained, test_records, extractor)
        for direction, evaluation in results.items():
            train_rate = trained.training_summary.get(
                f"{direction.value}_drop_fraction", 0.0
            )
            ceiling = 10 * max(train_rate, evaluation.drop_rate_true, 1e-4)
            assert evaluation.drop_rate_predicted < ceiling + 0.01

    def test_empty_records_rejected(self, trained_with_holdout):
        trained, _, extractor = trained_with_holdout
        with pytest.raises(ValueError):
            evaluate_on_records(trained, [], extractor)
