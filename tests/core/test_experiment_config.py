"""ExperimentConfig validation: bad spec values must fail fast."""

from __future__ import annotations

import math

import pytest

from repro.core.pipeline import ExperimentConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.load > 0 and config.duration_s > 0

    @pytest.mark.parametrize("load", (0.0, -0.25, math.nan))
    def test_rejects_non_positive_load(self, load):
        with pytest.raises(ValueError, match="load must be > 0"):
            ExperimentConfig(load=load)

    @pytest.mark.parametrize("duration_s", (0.0, -1.0, math.nan))
    def test_rejects_non_positive_duration(self, duration_s):
        with pytest.raises(ValueError, match="duration_s must be > 0"):
            ExperimentConfig(duration_s=duration_s)

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError, match="seed must be >= 0"):
            ExperimentConfig(seed=-1)

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValueError, match="matrix"):
            ExperimentConfig(matrix="hypercube")

    def test_overload_is_allowed(self):
        # load is a fraction of capacity but deliberately unbounded
        # above 1.0 (overload studies).
        assert ExperimentConfig(load=1.5).load == 1.5
