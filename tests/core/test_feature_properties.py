"""Property-based tests of the feature extractor."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import FEATURE_COUNT, RegionFeatureExtractor
from repro.core.macro import MacroState
from repro.net.packet import Packet
from repro.topology.clos import ClosParams, build_clos, server_name
from repro.topology.routing import EcmpRouting

_TOPO = build_clos(ClosParams(clusters=2))
_ROUTING = EcmpRouting(_TOPO)
_SERVERS = [n.name for n in _TOPO.servers()]


@st.composite
def _packet_streams(draw):
    n = draw(st.integers(1, 40))
    stream = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=1e-3, allow_nan=False))
        src_idx = draw(st.integers(0, len(_SERVERS) - 1))
        dst_idx = draw(st.integers(0, len(_SERVERS) - 2))
        if dst_idx >= src_idx:
            dst_idx += 1
        payload = draw(st.sampled_from([0, 100, 1460]))
        state = draw(st.sampled_from(list(MacroState)))
        packet = Packet(
            src=_SERVERS[src_idx], dst=_SERVERS[dst_idx],
            src_port=draw(st.integers(1, 60_000)), dst_port=80,
            payload_bytes=payload,
            retransmission=draw(st.booleans()),
        )
        stream.append((packet, t, state))
    return stream


@given(_packet_streams())
@settings(max_examples=60, deadline=None)
def test_features_always_finite_and_bounded(stream):
    """For arbitrary packet streams: vectors are the right shape, all
    finite; indicator/normalized features live in [0, 1]; time features
    are non-negative."""
    extractor = RegionFeatureExtractor(_TOPO, _ROUTING, 1)
    for packet, t, state in stream:
        features = extractor.extract(packet, t, state)
        assert features.shape == (FEATURE_COUNT,)
        assert np.all(np.isfinite(features))
        # Normalized identity/path/indicator features (all but gaps).
        bounded = np.concatenate([features[:11], features[13:]])
        assert np.all(bounded >= 0.0) and np.all(bounded <= 1.01)
        assert features[11] >= 0.0 and features[12] >= 0.0  # log-gaps
        # Exactly one macro state is hot.
        assert features[17:21].sum() == 1.0


@given(_packet_streams())
@settings(max_examples=30, deadline=None)
def test_gap_feature_monotone_in_elapsed_time(stream):
    """Within one direction, a longer quiet period gives an equal or
    larger gap feature than an instant follow-up."""
    extractor = RegionFeatureExtractor(_TOPO, _ROUTING, 1)
    # Feed the stream, then probe with two alternative follow-ups.
    last_time = 0.0
    probe = None
    for packet, t, state in stream:
        extractor.extract(packet, t, state)
        last_time = t
        probe = packet
    import copy

    short = RegionFeatureExtractor(_TOPO, _ROUTING, 1)
    long = RegionFeatureExtractor(_TOPO, _ROUTING, 1)
    for ext in (short, long):
        for packet, t, state in stream:
            ext.extract(packet, t, state)
    f_short = short.extract(probe, last_time + 1e-6, MacroState.MINIMAL)
    f_long = long.extract(probe, last_time + 1e-3, MacroState.MINIMAL)
    assert f_long[11] >= f_short[11]


_TOPO_AGG_HEAVY = build_clos(ClosParams(clusters=2, tors_per_cluster=2, aggs_per_cluster=5))
_ROUTING_AGG_HEAVY = EcmpRouting(_TOPO_AGG_HEAVY)


@given(
    ports=st.lists(st.integers(1, 60_000), min_size=1, max_size=40),
    src=st.integers(0, 1),
    dst_tor=st.integers(0, 1),
)
@settings(max_examples=40, deadline=None)
def test_agg_feature_bounded_with_more_aggs_than_tors(ports, src, dst_tor):
    """Regression: path_agg was normalized by the ToR count, so any
    cluster with more aggregation switches than ToRs pushed the feature
    past 1.0.  It must stay in (0, 1] for every ECMP path choice."""
    extractor = RegionFeatureExtractor(_TOPO_AGG_HEAVY, _ROUTING_AGG_HEAVY, 1)
    for i, port in enumerate(ports):
        packet = Packet(
            src=server_name(0, 0, src), dst=server_name(1, dst_tor, 0),
            src_port=port, dst_port=80, payload_bytes=1460,
        )
        features = extractor.extract(packet, 1e-6 * (i + 1), MacroState.MINIMAL)
        agg = features[7]  # path_agg
        assert 0.0 < agg <= 1.0
