"""Tests for per-packet feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import (
    Direction,
    FEATURE_COUNT,
    FEATURE_NAMES,
    RegionFeatureExtractor,
)
from repro.core.macro import MacroState
from repro.net.packet import Packet
from repro.topology.clos import server_name


def _extractor(small_clos, small_clos_routing, cluster=1):
    return RegionFeatureExtractor(small_clos, small_clos_routing, cluster)


def _packet(src, dst, payload=1460, **kwargs):
    return Packet(src=src, dst=dst, src_port=10000, dst_port=80, payload_bytes=payload, **kwargs)


class TestDirection:
    def test_ingress_when_dst_inside(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        packet = _packet(server_name(0, 0, 0), server_name(1, 0, 0))
        assert ext.direction_of(packet) is Direction.INGRESS

    def test_egress_when_dst_outside(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        packet = _packet(server_name(1, 0, 0), server_name(0, 0, 0))
        assert ext.direction_of(packet) is Direction.EGRESS

    def test_intra_cluster_is_ingress(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        packet = _packet(server_name(1, 0, 0), server_name(1, 1, 0))
        assert ext.direction_of(packet) is Direction.INGRESS


class TestFeatureVector:
    def test_shape_and_names(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing)
        packet = _packet(server_name(0, 0, 0), server_name(1, 0, 0))
        features = ext.extract(packet, 0.001, MacroState.MINIMAL)
        assert features.shape == (FEATURE_COUNT,)
        assert len(FEATURE_NAMES) == FEATURE_COUNT
        assert np.all(np.isfinite(features))

    def test_macro_one_hot_position(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing)
        packet = _packet(server_name(0, 0, 0), server_name(1, 0, 0))
        features = ext.extract(packet, 0.001, MacroState.HIGH)
        macro_block = features[FEATURE_NAMES.index("macro_minimal"):]
        np.testing.assert_array_equal(macro_block, [0, 0, 1, 0])

    def test_inter_arrival_gap_tracked_per_direction(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        ingress = _packet(server_name(0, 0, 0), server_name(1, 0, 0))
        egress = _packet(server_name(1, 0, 0), server_name(0, 0, 0))
        gap_idx = FEATURE_NAMES.index("gap_log_us")
        # First packet of each direction: zero gap.
        f1 = ext.extract(ingress, 0.000, MacroState.MINIMAL)
        f2 = ext.extract(egress, 0.001, MacroState.MINIMAL)
        assert f1[gap_idx] == 0.0
        assert f2[gap_idx] == 0.0  # separate clock, still first arrival
        # Second ingress packet 100us later: gap ~ log1p(100).
        f3 = ext.extract(_packet(ingress.src, ingress.dst), 0.0001, MacroState.MINIMAL)
        assert f3[gap_idx] == pytest.approx(np.log1p(100), rel=1e-6)

    def test_path_features_identify_region_switches(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        packet = _packet(server_name(0, 0, 0), server_name(1, 1, 2))
        features = ext.extract(packet, 0.0, MacroState.MINIMAL)
        names = FEATURE_NAMES
        assert features[names.index("has_core_hop")] == 1.0
        assert features[names.index("path_tor_in")] > 0.0  # dst's ToR
        assert features[names.index("path_agg")] > 0.0
        assert features[names.index("path_core")] > 0.0

    def test_intra_rack_path_has_no_core(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        packet = _packet(server_name(1, 0, 0), server_name(1, 0, 1))
        features = ext.extract(packet, 0.0, MacroState.MINIMAL)
        assert features[FEATURE_NAMES.index("has_core_hop")] == 0.0
        assert features[FEATURE_NAMES.index("path_core")] == 0.0

    def test_ack_and_retransmission_flags(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing)
        ack = _packet(server_name(0, 0, 0), server_name(1, 0, 0), payload=0)
        retx = _packet(
            server_name(0, 0, 0), server_name(1, 0, 0), retransmission=True
        )
        f_ack = ext.extract(ack, 0.0, MacroState.MINIMAL)
        f_retx = ext.extract(retx, 0.001, MacroState.MINIMAL)
        assert f_ack[FEATURE_NAMES.index("is_ack")] == 1.0
        assert f_retx[FEATURE_NAMES.index("is_retransmission")] == 1.0

    def test_same_flow_cached_path_consistent(self, small_clos, small_clos_routing):
        ext = _extractor(small_clos, small_clos_routing)
        p1 = _packet(server_name(0, 0, 0), server_name(1, 0, 0))
        p2 = _packet(server_name(0, 0, 0), server_name(1, 0, 0), payload=100)
        f1 = ext.extract(p1, 0.0, MacroState.MINIMAL)
        f2 = ext.extract(p2, 0.001, MacroState.MINIMAL)
        path_slice = slice(FEATURE_NAMES.index("path_tor_in"), FEATURE_NAMES.index("has_core_hop") + 1)
        np.testing.assert_array_equal(f1[path_slice], f2[path_slice])

    def test_features_header_derivable_only(self, small_clos, small_clos_routing):
        """Two extractors fed the same packet sequence produce identical
        features — there is no hidden dependence on simulator state
        (the paper's requirement in Section 4.2)."""
        packets = [
            (_packet(server_name(0, 0, i % 4), server_name(1, i % 2, i % 4)), i * 1e-5)
            for i in range(10)
        ]
        ext_a = _extractor(small_clos, small_clos_routing)
        ext_b = _extractor(small_clos, small_clos_routing)
        for packet, t in packets:
            fa = ext_a.extract(packet, t, MacroState.MINIMAL)
            fb = ext_b.extract(packet, t, MacroState.MINIMAL)
            np.testing.assert_array_equal(fa, fb)


class TestNormalizerRegressions:
    """Regressions for the path_agg and gap-EMA hot-path bugs."""

    def test_agg_index_normalized_by_agg_count(self):
        """path_agg once divided the aggregation-switch index by the ToR
        count; with more aggs than ToRs the feature escaped [0, 1]."""
        from repro.topology.clos import ClosParams, build_clos
        from repro.topology.routing import EcmpRouting

        topo = build_clos(ClosParams(clusters=2, tors_per_cluster=2, aggs_per_cluster=4))
        ext = RegionFeatureExtractor(topo, EcmpRouting(topo), 1)
        agg_idx = FEATURE_NAMES.index("path_agg")
        seen = set()
        for port in range(10_000, 10_064):
            packet = Packet(
                src=server_name(0, 0, 0), dst=server_name(1, 1, 0),
                src_port=port, dst_port=80, payload_bytes=1460,
            )
            features = ext.extract(packet, port * 1e-6, MacroState.MINIMAL)
            assert 0.0 < features[agg_idx] <= 1.0
            seen.add(features[agg_idx])
        # ECMP spreads flows over all four aggs; the top-index agg must
        # land exactly at 1.0 under the correct normalizer.
        assert max(seen) == pytest.approx(1.0)
        assert len(seen) > 1

    def test_first_packet_leaves_gap_ema_unseeded(self, small_clos, small_clos_routing):
        """The first arrival has no inter-arrival gap; seeding the EMA
        with the 0.0 sentinel biased the feature low for the whole
        warm-up.  The EMA must start at the first *real* gap."""
        ext = _extractor(small_clos, small_clos_routing, cluster=1)
        ema_idx = FEATURE_NAMES.index("gap_ema_log_us")
        first = ext.extract(
            _packet(server_name(0, 0, 0), server_name(1, 0, 0)), 0.0, MacroState.MINIMAL
        )
        assert first[ema_idx] == 0.0  # still unseeded, not a seeded 0.0
        second = ext.extract(
            _packet(server_name(0, 0, 0), server_name(1, 0, 0)), 1e-4, MacroState.MINIMAL
        )
        # EMA == the 100us gap itself (a seeded-at-zero EMA would read
        # log1p(alpha * 100) instead).
        assert second[ema_idx] == pytest.approx(np.log1p(100), rel=1e-9)

    def test_gap_ema_identical_across_extractor_copies(self, small_clos, small_clos_routing):
        """Training and inference share the extractor class; the fix
        must keep both phases bit-identical on the same stream."""
        stream = [
            (_packet(server_name(0, 0, i % 4), server_name(1, i % 2, 0)), 3e-5 * (i + 1))
            for i in range(8)
        ]
        ext_a = _extractor(small_clos, small_clos_routing, cluster=1)
        ext_b = _extractor(small_clos, small_clos_routing, cluster=1)
        for packet, t in stream:
            np.testing.assert_array_equal(
                ext_a.extract(packet, t, MacroState.MINIMAL),
                ext_b.extract(packet, t, MacroState.MINIMAL),
            )
