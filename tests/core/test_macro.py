"""Tests for the four-state auto-regressive macro classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.macro import (
    AutoRegressiveMacroClassifier,
    MacroCalibration,
    MacroState,
    calibrate_macro,
)


def _classifier(latency_low=1e-4, drop_high=0.05, bucket=0.001):
    return AutoRegressiveMacroClassifier(
        MacroCalibration(latency_low_s=latency_low, drop_rate_high=drop_high),
        bucket_s=bucket,
    )


class TestMacroState:
    def test_one_hot(self):
        np.testing.assert_array_equal(MacroState.HIGH.one_hot(), [0, 0, 1, 0])
        assert MacroState.MINIMAL.one_hot().sum() == 1.0


class TestCalibration:
    def test_thresholds_from_trace(self):
        latencies = np.linspace(1e-5, 1e-3, 100)
        drops = [0] * 95 + [1] * 5
        cal = calibrate_macro(latencies, drops)
        assert cal.latency_low_s == pytest.approx(np.quantile(latencies, 0.25))
        assert cal.drop_rate_high == pytest.approx(0.1)  # 2 x 5%

    def test_drop_floor(self):
        cal = calibrate_macro([1e-4], [0])
        assert cal.drop_rate_high == 0.005

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_macro([], [])

    def test_roundtrip_arrays(self):
        cal = MacroCalibration(latency_low_s=1e-4, drop_rate_high=0.02)
        restored = MacroCalibration.from_arrays(cal.as_arrays())
        assert restored == cal


class TestClassifierStates:
    def test_starts_minimal(self):
        assert _classifier().state is MacroState.MINIMAL

    def test_low_latency_stays_minimal(self):
        clf = _classifier(latency_low=1e-4)
        t = 0.0
        for _ in range(50):
            clf.observe(t, latency_s=2e-5)
            t += 0.0005
        assert clf.state is MacroState.MINIMAL

    def test_rising_latency_increasing(self):
        clf = _classifier(latency_low=1e-4)
        t = 0.0
        for i in range(60):
            clf.observe(t, latency_s=1e-4 + i * 2e-5)
            t += 0.0005
        assert clf.state is MacroState.INCREASING

    def test_falling_latency_decreasing(self):
        clf = _classifier(latency_low=1e-5)
        t = 0.0
        # Rise first, then fall but stay above the 'minimal' threshold.
        for i in range(40):
            clf.observe(t, latency_s=1e-3 + i * 1e-4)
            t += 0.0005
        for i in range(40):
            clf.observe(t, latency_s=5e-3 - i * 1e-4)
            t += 0.0005
        assert clf.state is MacroState.DECREASING

    def test_heavy_drops_high(self):
        clf = _classifier(drop_high=0.05)
        t = 0.0
        for i in range(100):
            clf.observe(t, latency_s=1e-3, dropped=(i % 3 == 0))
            t += 0.0005
        assert clf.state is MacroState.HIGH

    def test_full_congestion_cycle(self):
        """Drive the classic cycle: calm -> ramp -> drops -> drain."""
        clf = _classifier(latency_low=1e-4, drop_high=0.05, bucket=0.001)
        states = []
        t = 0.0

        def run(n, latency, drop_every=0):
            nonlocal t
            for i in range(n):
                dropped = drop_every > 0 and i % drop_every == 0
                clf.observe(t, latency_s=latency(i), dropped=dropped)
                t += 0.0004
                states.append(clf.state)

        run(30, lambda i: 2e-5)                     # calm
        run(60, lambda i: 1e-4 + i * 5e-5)          # ramp
        run(60, lambda i: 4e-3, drop_every=3)       # saturated
        run(200, lambda i: max(4e-3 - i * 3e-5, 2e-4))  # drain
        seen = set(states)
        assert {
            MacroState.MINIMAL,
            MacroState.INCREASING,
            MacroState.HIGH,
            MacroState.DECREASING,
        } <= seen

    def test_emas_exposed(self):
        clf = _classifier()
        clf.observe(0.0, latency_s=1e-3, dropped=True)
        assert clf.latency_ema == pytest.approx(1e-3)
        assert clf.drop_ema > 0

    def test_validation(self):
        cal = MacroCalibration(1e-4, 0.05)
        with pytest.raises(ValueError):
            AutoRegressiveMacroClassifier(cal, bucket_s=0.0)
        with pytest.raises(ValueError):
            AutoRegressiveMacroClassifier(cal, ema_alpha=0.0)


class TestIdleDecay:
    """Regression: idle buckets once fired a single reclassification
    with no EMA decay, pinning a quiet cluster in HIGH forever."""

    def _drive_to_high(self, clf):
        for i in range(30):
            clf.observe(i * 1e-5, latency_s=5e-4, dropped=(i % 2 == 0))
        clf.observe(0.0011, latency_s=5e-4)  # close bucket 0
        assert clf.state is MacroState.HIGH
        return clf

    def test_idle_gap_leaves_high(self):
        clf = self._drive_to_high(_classifier(latency_low=1e-4, drop_high=0.05))
        # 20 empty buckets: EMAs decay by 0.8 each -> far below the
        # drop threshold; no new packet needed to leave HIGH.
        clf.advance(0.021)
        assert clf.state is not MacroState.HIGH
        assert clf.drop_ema < 0.05

    def test_each_idle_bucket_reclassifies(self):
        """With a low MINIMAL threshold the drained cluster must pass
        through (and stay in) DECREASING — its latency EMA is falling
        but still elevated.  A single terminal reclassify would jump
        states without ever visiting the falling regime."""
        clf = self._drive_to_high(_classifier(latency_low=1e-6, drop_high=0.05))
        visited = []
        clf.on_transition = lambda before, after: visited.append(after)
        clf.advance(0.021)
        assert MacroState.DECREASING in visited
        assert clf.state is MacroState.DECREASING

    def test_long_gap_costs_constant_work(self):
        """Gaps beyond _MAX_IDLE_STEPS zero the EMAs directly instead
        of stepping bucket by bucket (an hour of idle is O(1))."""
        clf = self._drive_to_high(_classifier(latency_low=1e-4, drop_high=0.05))
        steps = AutoRegressiveMacroClassifier._MAX_IDLE_STEPS
        clf.advance((steps + 1000) * clf.bucket_s)
        assert clf.drop_ema == 0.0
        assert clf.latency_ema == 0.0
        assert clf.state is MacroState.MINIMAL

    def test_advance_without_observation_is_idempotent(self):
        clf = self._drive_to_high(_classifier())
        clf.advance(0.021)
        state, drop_ema = clf.state, clf.drop_ema
        clf.advance(0.021)  # same bucket: no further decay
        assert clf.state is state and clf.drop_ema == drop_ema

    def test_observation_after_gap_uses_decayed_baseline(self):
        """A drop burst, a long quiet period, then one clean packet:
        the cluster must classify from the decayed EMAs, not resurrect
        the stale HIGH state."""
        clf = self._drive_to_high(_classifier(latency_low=1e-4, drop_high=0.05))
        clf.observe(0.050, latency_s=5e-5)
        clf.observe(0.051, latency_s=5e-5)  # close the bucket
        assert clf.state is MacroState.MINIMAL
