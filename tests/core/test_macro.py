"""Tests for the four-state auto-regressive macro classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.macro import (
    AutoRegressiveMacroClassifier,
    MacroCalibration,
    MacroState,
    calibrate_macro,
)


def _classifier(latency_low=1e-4, drop_high=0.05, bucket=0.001):
    return AutoRegressiveMacroClassifier(
        MacroCalibration(latency_low_s=latency_low, drop_rate_high=drop_high),
        bucket_s=bucket,
    )


class TestMacroState:
    def test_one_hot(self):
        np.testing.assert_array_equal(MacroState.HIGH.one_hot(), [0, 0, 1, 0])
        assert MacroState.MINIMAL.one_hot().sum() == 1.0


class TestCalibration:
    def test_thresholds_from_trace(self):
        latencies = np.linspace(1e-5, 1e-3, 100)
        drops = [0] * 95 + [1] * 5
        cal = calibrate_macro(latencies, drops)
        assert cal.latency_low_s == pytest.approx(np.quantile(latencies, 0.25))
        assert cal.drop_rate_high == pytest.approx(0.1)  # 2 x 5%

    def test_drop_floor(self):
        cal = calibrate_macro([1e-4], [0])
        assert cal.drop_rate_high == 0.005

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_macro([], [])

    def test_roundtrip_arrays(self):
        cal = MacroCalibration(latency_low_s=1e-4, drop_rate_high=0.02)
        restored = MacroCalibration.from_arrays(cal.as_arrays())
        assert restored == cal


class TestClassifierStates:
    def test_starts_minimal(self):
        assert _classifier().state is MacroState.MINIMAL

    def test_low_latency_stays_minimal(self):
        clf = _classifier(latency_low=1e-4)
        t = 0.0
        for _ in range(50):
            clf.observe(t, latency_s=2e-5)
            t += 0.0005
        assert clf.state is MacroState.MINIMAL

    def test_rising_latency_increasing(self):
        clf = _classifier(latency_low=1e-4)
        t = 0.0
        for i in range(60):
            clf.observe(t, latency_s=1e-4 + i * 2e-5)
            t += 0.0005
        assert clf.state is MacroState.INCREASING

    def test_falling_latency_decreasing(self):
        clf = _classifier(latency_low=1e-5)
        t = 0.0
        # Rise first, then fall but stay above the 'minimal' threshold.
        for i in range(40):
            clf.observe(t, latency_s=1e-3 + i * 1e-4)
            t += 0.0005
        for i in range(40):
            clf.observe(t, latency_s=5e-3 - i * 1e-4)
            t += 0.0005
        assert clf.state is MacroState.DECREASING

    def test_heavy_drops_high(self):
        clf = _classifier(drop_high=0.05)
        t = 0.0
        for i in range(100):
            clf.observe(t, latency_s=1e-3, dropped=(i % 3 == 0))
            t += 0.0005
        assert clf.state is MacroState.HIGH

    def test_full_congestion_cycle(self):
        """Drive the classic cycle: calm -> ramp -> drops -> drain."""
        clf = _classifier(latency_low=1e-4, drop_high=0.05, bucket=0.001)
        states = []
        t = 0.0

        def run(n, latency, drop_every=0):
            nonlocal t
            for i in range(n):
                dropped = drop_every > 0 and i % drop_every == 0
                clf.observe(t, latency_s=latency(i), dropped=dropped)
                t += 0.0004
                states.append(clf.state)

        run(30, lambda i: 2e-5)                     # calm
        run(60, lambda i: 1e-4 + i * 5e-5)          # ramp
        run(60, lambda i: 4e-3, drop_every=3)       # saturated
        run(200, lambda i: max(4e-3 - i * 3e-5, 2e-4))  # drain
        seen = set(states)
        assert {
            MacroState.MINIMAL,
            MacroState.INCREASING,
            MacroState.HIGH,
            MacroState.DECREASING,
        } <= seen

    def test_emas_exposed(self):
        clf = _classifier()
        clf.observe(0.0, latency_s=1e-3, dropped=True)
        assert clf.latency_ema == pytest.approx(1e-3)
        assert clf.drop_ema > 0

    def test_validation(self):
        cal = MacroCalibration(1e-4, 0.05)
        with pytest.raises(ValueError):
            AutoRegressiveMacroClassifier(cal, bucket_s=0.0)
        with pytest.raises(ValueError):
            AutoRegressiveMacroClassifier(cal, ema_alpha=0.0)
