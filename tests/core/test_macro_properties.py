"""Property-based robustness tests of the macro classifier."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.macro import (
    AutoRegressiveMacroClassifier,
    MacroCalibration,
    MacroState,
)


@st.composite
def _observation_streams(draw):
    n = draw(st.integers(1, 200))
    t = 0.0
    stream = []
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=0.01, allow_nan=False))
        latency = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=1e-7, max_value=1.0, allow_nan=False),
            )
        )
        dropped = draw(st.booleans())
        stream.append((t, latency, dropped))
    return stream


@given(
    _observation_streams(),
    st.floats(min_value=1e-6, max_value=1e-2, allow_nan=False),
    st.floats(min_value=1e-3, max_value=0.5, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_state_always_valid(stream, latency_low, drop_high):
    """For arbitrary observation streams the classifier never crashes
    and always reports one of the four paper states with consistent
    EMAs."""
    clf = AutoRegressiveMacroClassifier(
        MacroCalibration(latency_low_s=latency_low, drop_rate_high=drop_high)
    )
    for t, latency, dropped in stream:
        clf.observe(t, latency_s=latency, dropped=dropped)
        assert clf.state in MacroState
        assert 0.0 <= clf.drop_ema <= 1.0
        if clf.latency_ema is not None:
            assert clf.latency_ema > 0


@given(_observation_streams())
@settings(max_examples=50, deadline=None)
def test_all_drops_eventually_high(stream):
    """A sustained 100%-drop regime must classify as HIGH congestion."""
    clf = AutoRegressiveMacroClassifier(
        MacroCalibration(latency_low_s=1e-4, drop_rate_high=0.1)
    )
    t = stream[-1][0] if stream else 0.0
    for t_obs, latency, _ in stream:
        clf.observe(t_obs, latency_s=latency, dropped=True)
    # Keep dropping over many buckets.
    for i in range(50):
        t += 0.002
        clf.observe(t, latency_s=1e-3, dropped=True)
    assert clf.state is MacroState.HIGH


@given(_observation_streams())
@settings(max_examples=50, deadline=None)
def test_quiet_aftermath_leaves_high(stream):
    """After congestion fully subsides (low latency, no drops), the
    classifier must eventually return to MINIMAL whatever came before."""
    clf = AutoRegressiveMacroClassifier(
        MacroCalibration(latency_low_s=1e-4, drop_rate_high=0.1)
    )
    t = 0.0
    for t_obs, latency, dropped in stream:
        clf.observe(t_obs, latency_s=latency, dropped=dropped)
        t = t_obs
    for i in range(200):
        t += 0.002
        clf.observe(t, latency_s=1e-5, dropped=False)
    assert clf.state is MacroState.MINIMAL
