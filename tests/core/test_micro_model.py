"""Tests for the micro model on synthetic learnable patterns.

These verify the model can actually learn the kind of structure the
paper relies on: drop probability tied to a feature, latency tied to
another, and temporal context carried by the LSTM state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.micro import MicroModel, MicroModelConfig
from repro.core.training import TrainingData, train_micro_model
from repro.nn.data import Standardizer, make_sequences
from repro.nn.losses import JointDropLatencyLoss


def _synthetic_data(n=2048, window=16, seed=0):
    """Feature 0 drives drops; feature 1 drives latency."""
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n, 4))
    drop = (features[:, 0] > 1.0).astype(float)
    latency = 0.5 * features[:, 1]
    targets = np.stack([drop, latency], axis=1)
    x, y = make_sequences(features, targets, window)
    standardizer = Standardizer().fit(features)
    return TrainingData(
        windows_x=x,
        windows_y=y,
        feature_standardizer=standardizer,
        latency_mean=0.0,
        latency_std=1.0,
        sample_count=n,
        drop_fraction=float(drop.mean()),
    )


class TestMicroModelConfig:
    def test_defaults_match_paper(self):
        config = MicroModelConfig()
        assert config.hidden_size == 128
        assert config.num_layers == 2
        assert config.learning_rate == 1e-4
        assert config.momentum == 0.9
        assert config.batch_size == 64
        assert 0 < config.alpha <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroModelConfig(alpha=0.0)
        with pytest.raises(ValueError):
            MicroModelConfig(hidden_size=0)
        with pytest.raises(ValueError):
            MicroModelConfig(window=0)


class TestLearning:
    def test_learns_drop_rule(self):
        data = _synthetic_data()
        config = MicroModelConfig(
            input_size=4, hidden_size=24, num_layers=1, window=16,
            train_batches=250, learning_rate=3e-2, alpha=0.5,
        )
        model, history = train_micro_model(data, config, np.random.default_rng(1))
        # Evaluate drop AUC-style: predictions for drop=1 samples higher.
        x = data.windows_x[:32].transpose(1, 0, 2)
        y = data.windows_y[:32].transpose(1, 0, 2)
        drop_logits, _ = model.forward(x)
        pos = drop_logits[y[..., 0] == 1]
        neg = drop_logits[y[..., 0] == 0]
        assert pos.size > 0 and neg.size > 0
        assert pos.mean() > neg.mean() + 1.0

    def test_learns_latency_regression(self):
        data = _synthetic_data(seed=3)
        config = MicroModelConfig(
            input_size=4, hidden_size=24, num_layers=1, window=16,
            train_batches=300, learning_rate=3e-2, alpha=1.0,
        )
        model, _ = train_micro_model(data, config, np.random.default_rng(2))
        x = data.windows_x[:32].transpose(1, 0, 2)
        y = data.windows_y[:32].transpose(1, 0, 2)
        _, latency_pred = model.forward(x)
        target = y[..., 1]
        survivors = y[..., 0] == 0
        residual = latency_pred[survivors] - target[survivors]
        baseline = target[survivors].var()
        assert residual.var() < 0.5 * baseline  # explains >50% variance

    def test_loss_history_recorded(self):
        data = _synthetic_data(n=256)
        config = MicroModelConfig(
            input_size=4, hidden_size=8, num_layers=1, window=16, train_batches=10
        )
        _, history = train_micro_model(data, config)
        assert len(history) == 10
        assert all(np.isfinite(h.total) for h in history)


class TestPredictStep:
    def test_probability_in_unit_interval(self, rng):
        config = MicroModelConfig(input_size=4, hidden_size=8, num_layers=2)
        model = MicroModel(config, rng)
        state = model.initial_state()
        for _ in range(20):
            p, latency, state = model.predict_step(rng.standard_normal(4), state)
            assert 0.0 <= p <= 1.0
            assert np.isfinite(latency)

    def test_state_carries_information(self, rng):
        """The same input gives different outputs under different
        histories — the LSTM is actually stateful."""
        config = MicroModelConfig(input_size=4, hidden_size=8, num_layers=1)
        model = MicroModel(config, rng)
        probe = np.ones(4)
        fresh = model.initial_state()
        p_fresh, l_fresh, _ = model.predict_step(probe, fresh)
        state = model.initial_state()
        for _ in range(10):
            _, _, state = model.predict_step(rng.standard_normal(4) * 3, state)
        p_hist, l_hist, _ = model.predict_step(probe, state)
        assert (p_fresh, l_fresh) != (p_hist, l_hist)

    def test_sequence_forward_matches_stepping(self, rng):
        config = MicroModelConfig(input_size=3, hidden_size=6, num_layers=2)
        model = MicroModel(config, rng)
        xs = rng.standard_normal((5, 1, 3))
        drop_seq, lat_seq = model.forward(xs)
        state = model.initial_state()
        from repro.nn.activations import sigmoid

        for t in range(5):
            p, latency, state = model.predict_step(xs[t, 0], state)
            assert p == pytest.approx(float(sigmoid(drop_seq[t])[0]), rel=1e-9)
            assert latency == pytest.approx(float(lat_seq[t, 0]), rel=1e-9)
