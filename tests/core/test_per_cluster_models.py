"""Tests for independently trained per-cluster models (Section 7)."""

from __future__ import annotations

import pytest

from repro.core.features import RegionFeatureExtractor
from repro.core.hybrid import HybridConfig, HybridSimulation
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig, run_hybrid_simulation
from repro.core.training import RegionTraceCollector, train_cluster_model
from repro.des.kernel import Simulator
from repro.net.network import Network
from repro.topology.clos import ClosParams, build_clos
from repro.traffic.apps import TrafficGenerator
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import web_search_sizes
from repro.traffic.matrix import UniformMatrix

FAST_MICRO = MicroModelConfig(hidden_size=12, num_layers=1, window=8, train_batches=15)


@pytest.fixture(scope="module")
def independently_trained():
    """Collect traces of clusters 1 and 2 from ONE full simulation and
    train a separate model per cluster."""
    config = ExperimentConfig(
        clos=ClosParams(clusters=3), load=0.25, duration_s=0.006, seed=151
    )
    topo = build_clos(config.clos)
    sim = Simulator(seed=config.seed)
    net = Network(sim, topo, config=config.net)
    collectors = {c: RegionTraceCollector(net, c) for c in (1, 2)}
    sizes = web_search_sizes()
    rate = arrival_rate_for_load(config.load, 24, 10e9, sizes.mean())
    gen = TrafficGenerator(
        sim, net, matrix=UniformMatrix(topo), sizes=sizes,
        arrivals=PoissonArrivals(rate),
    )
    gen.start()
    sim.run(until=config.duration_s)
    models = {}
    for cluster, collector in collectors.items():
        records = collector.finalize()
        assert len(records) > 50, f"cluster {cluster} trace too small"
        extractor = RegionFeatureExtractor(topo, net.routing, cluster)
        models[cluster] = train_cluster_model(records, extractor, config=FAST_MICRO)
    return config, models


class TestPerClusterModels:
    def test_simultaneous_collectors_are_independent(self, independently_trained):
        config, models = independently_trained
        assert set(models) == {1, 2}
        # The two traces came from different boundaries: different sizes.
        s1 = models[1].training_summary.get("ingress_samples", 0)
        s2 = models[2].training_summary.get("ingress_samples", 0)
        assert s1 > 0 and s2 > 0

    def test_hybrid_with_model_map(self, independently_trained):
        config, models = independently_trained
        result, hybrid = run_hybrid_simulation(config, models)
        assert set(hybrid.models) == {1, 2}
        assert hybrid.models[1].trained is models[1]
        assert hybrid.models[2].trained is models[2]
        assert result.model_packets > 0

    def test_missing_cluster_rejected(self, independently_trained):
        config, models = independently_trained
        partial = {1: models[1]}
        with pytest.raises(ValueError, match="missing clusters"):
            run_hybrid_simulation(config, partial)

    def test_map_rejected_in_blackbox_mode(self, independently_trained):
        config, models = independently_trained
        with pytest.raises(ValueError, match="single_black_box"):
            run_hybrid_simulation(
                config, models, hybrid=HybridConfig(single_black_box=True)
            )
