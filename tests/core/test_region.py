"""Tests for the Region abstraction and single-black-box mode."""

from __future__ import annotations

import pytest

from repro.core.hybrid import BLACK_BOX_KEY, HybridConfig, HybridSimulation
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.region import Region
from repro.topology.clos import ClosParams, build_clos, server_name
from repro.topology.routing import EcmpRouting

FAST_MICRO = MicroModelConfig(hidden_size=16, num_layers=1, window=8, train_batches=40)


class TestRegionConstruction:
    def test_cluster_region(self, small_clos):
        region = Region.cluster(small_clos, 1)
        assert region.switches == frozenset(
            {"tor-c1-0", "tor-c1-1", "agg-c1-0", "agg-c1-1"}
        )
        assert len(region.shadow_servers) == 8
        assert region.is_shadow_server(server_name(1, 0, 0))
        assert not region.is_shadow_server(server_name(0, 0, 0))

    def test_rest_of_network_region(self, small_clos):
        region = Region.rest_of_network(small_clos, full_cluster=0)
        # Cluster 1's fabric + both cores; cluster 0's fabric excluded.
        assert "core-0" in region.switches and "core-1" in region.switches
        assert "tor-c1-0" in region.switches
        assert "tor-c0-0" not in region.switches
        assert region.is_shadow_server(server_name(1, 1, 3))
        assert not region.is_shadow_server(server_name(0, 0, 0))

    def test_empty_region_rejected(self, small_clos):
        with pytest.raises(ValueError):
            Region.cluster(small_clos, 99)
        with pytest.raises(ValueError):
            Region(name="empty", switches=frozenset(), shadow_servers=frozenset())


class TestEgressOnPath:
    def test_cluster_region_egress_up(self, small_clos, small_clos_routing):
        region = Region.cluster(small_clos, 1)
        path = small_clos_routing.path(server_name(1, 0, 0), server_name(0, 0, 0), 5)
        egress = region.egress_node_on_path(path)
        assert egress.startswith("core-")

    def test_rest_of_network_egress_into_full_cluster(
        self, small_clos, small_clos_routing
    ):
        region = Region.rest_of_network(small_clos, full_cluster=0)
        path = small_clos_routing.path(server_name(1, 0, 0), server_name(0, 0, 0), 5)
        egress = region.egress_node_on_path(path)
        assert egress.startswith("agg-c0-")

    def test_path_not_touching_region_raises(self, small_clos, small_clos_routing):
        region = Region.cluster(small_clos, 1)
        path = small_clos_routing.path(server_name(0, 0, 0), server_name(0, 0, 1), 5)
        with pytest.raises(ValueError):
            region.egress_node_on_path(path)

    def test_path_ending_inside_region_raises(self, small_clos):
        region = Region.cluster(small_clos, 1)
        with pytest.raises(ValueError):
            region.egress_node_on_path([server_name(1, 0, 0), "tor-c1-0"])


class TestSingleBlackBox:
    @pytest.fixture(scope="class")
    def blackbox_bundle(self):
        """Train on the rest-of-network boundary of a 2-cluster sim."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.006, seed=61
        )
        topology = build_clos(config.clos)
        region = Region.rest_of_network(topology, full_cluster=0)
        trained, _ = train_reusable_model(
            config, micro=FAST_MICRO, collect_cluster=region
        )
        return trained

    def test_structure(self, blackbox_bundle):
        from repro.des.kernel import Simulator

        topo = build_clos(ClosParams(clusters=2))
        hybrid = HybridSimulation(
            Simulator(seed=1), topo, blackbox_bundle,
            config=HybridConfig(single_black_box=True),
        )
        assert set(hybrid.models) == {BLACK_BOX_KEY}
        # Only cluster 0's switches remain; not even the cores.
        assert set(hybrid.network.switches) == {
            "tor-c0-0", "tor-c0-1", "agg-c0-0", "agg-c0-1"
        }
        # All hosts still real.
        assert len(hybrid.network.hosts) == 16

    def test_end_to_end_run(self, blackbox_bundle):
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=62
        )
        result, hybrid = run_hybrid_simulation(
            config, blackbox_bundle, hybrid=HybridConfig(single_black_box=True)
        )
        model = hybrid.models[BLACK_BOX_KEY]
        assert model.packets_handled > 0
        assert result.flows_completed > 0
        assert len(result.rtt_samples) > 0

    def test_blackbox_removes_more_events_than_cluster_unit(self, blackbox_bundle):
        """The limit case elides strictly more of the network, so its
        event count must undercut per-cluster approximation."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=63
        )
        per_cluster, _ = run_hybrid_simulation(config, blackbox_bundle)
        blackbox, _ = run_hybrid_simulation(
            config, blackbox_bundle, hybrid=HybridConfig(single_black_box=True)
        )
        assert blackbox.events_executed < per_cluster.events_executed
