"""Tests for trace collection, dataset construction, and training."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.features import Direction, FEATURE_COUNT, RegionFeatureExtractor
from repro.core.micro import MicroModel, MicroModelConfig
from repro.core.training import (
    PacketCrossing,
    RegionTraceCollector,
    TrainedClusterModel,
    build_direction_datasets,
    standardize_and_window,
    train_cluster_model,
    train_micro_model,
)
from repro.core.pipeline import ExperimentConfig, run_full_simulation
from repro.net.packet import Packet
from repro.topology.clos import ClosParams, server_name

FAST_MICRO = MicroModelConfig(hidden_size=16, num_layers=1, window=8, train_batches=15)

SMALL_EXPERIMENT = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.25, duration_s=0.006, seed=11
)


@pytest.fixture(scope="module")
def trace_output():
    """One full simulation with trace collection, shared by tests."""
    return run_full_simulation(SMALL_EXPERIMENT, collect_cluster=1)


class TestTraceCollection:
    def test_crossings_recorded(self, trace_output):
        records = trace_output.records
        assert len(records) > 200
        delivered = [r for r in records if not r.dropped]
        assert delivered, "no delivered packets recorded"
        for record in delivered[:50]:
            assert record.latency_s is not None and record.latency_s > 0
            assert record.exit_time > record.entry_time

    def test_drops_recorded_when_congested(self, trace_output):
        # The workload at this load produces at least some region drops.
        drops = [r for r in trace_output.records if r.dropped]
        for record in drops:
            assert record.drop_time is not None
            assert record.exit_time is None

    def test_latency_floor_is_physical(self, trace_output):
        """No packet crosses the region faster than physics allows:
        at least one hop of propagation (1 us) plus serialization."""
        for record in trace_output.records:
            if record.latency_s is not None:
                assert record.latency_s >= 1e-6

    def test_both_directions_seen(self, trace_output):
        ext = trace_output.extractor
        directions = {ext.direction_of(r.packet) for r in trace_output.records}
        assert directions == {Direction.INGRESS, Direction.EGRESS}

    def test_invalid_cluster_rejected(self, small_clos):
        from repro.des.kernel import Simulator
        from repro.net.network import Network

        net = Network(Simulator(), small_clos)
        with pytest.raises(ValueError):
            RegionTraceCollector(net, region=99)


class TestDatasetConstruction:
    def test_build_datasets(self, trace_output):
        datasets, calibration = build_direction_datasets(
            trace_output.records, trace_output.extractor
        )
        assert calibration.latency_low_s > 0
        total = sum(d.features.shape[0] for d in datasets.values())
        assert total == len(trace_output.records)
        for dataset in datasets.values():
            assert dataset.features.shape[1] == FEATURE_COUNT
            # Drop targets are 0/1; latency is NaN exactly where dropped.
            assert set(np.unique(dataset.drop)) <= {0.0, 1.0}
            np.testing.assert_array_equal(
                np.isnan(dataset.latency_log), dataset.drop == 1.0
            )

    def test_standardize_and_window(self, trace_output):
        datasets, _ = build_direction_datasets(
            trace_output.records, trace_output.extractor
        )
        dataset = datasets[Direction.INGRESS]
        data = standardize_and_window(dataset, window=8)
        assert data.windows_x.shape[1] == 8
        assert data.windows_x.shape[2] == FEATURE_COUNT
        assert data.windows_y.shape[2] == 3  # [drop, latency, macro_index]
        assert set(np.unique(data.windows_y[..., 2])) <= {0.0, 1.0, 2.0, 3.0}
        assert data.latency_std > 0
        # Standardized latency targets of survivors are ~N(0,1).
        survivors = data.windows_y[..., 1][data.windows_y[..., 0] == 0]
        assert abs(float(survivors.mean())) < 0.5

    def test_empty_records_rejected(self, trace_output):
        with pytest.raises(ValueError):
            build_direction_datasets([], trace_output.extractor)


class TestTraining:
    def test_loss_decreases(self, trace_output):
        datasets, _ = build_direction_datasets(
            trace_output.records, trace_output.extractor
        )
        data = standardize_and_window(datasets[Direction.INGRESS], window=8)
        config = MicroModelConfig(
            hidden_size=16, num_layers=1, window=8, train_batches=60,
            learning_rate=1e-2,
        )
        _, history = train_micro_model(data, config, np.random.default_rng(0))
        early = np.mean([h.total for h in history[:5]])
        late = np.mean([h.total for h in history[-5:]])
        assert late < early

    def test_train_cluster_model_bundle(self, trace_output):
        trained = train_cluster_model(
            trace_output.records, trace_output.extractor, config=FAST_MICRO
        )
        assert Direction.INGRESS in trained.directions
        summary = trained.training_summary
        assert summary["ingress_samples"] > 0

    def test_insufficient_windows_rejected(self, trace_output):
        records = trace_output.records[:3]
        with pytest.raises(ValueError):
            train_cluster_model(
                records, trace_output.extractor,
                config=MicroModelConfig(window=512, train_batches=1),
            )


class TestBundlePersistence:
    def test_save_load_roundtrip(self, trace_output, tmp_path):
        trained = train_cluster_model(
            trace_output.records, trace_output.extractor, config=FAST_MICRO
        )
        trained.save(tmp_path / "bundle")
        loaded = TrainedClusterModel.load(tmp_path / "bundle")
        assert loaded.config == trained.config
        assert loaded.calibration == trained.calibration
        assert set(loaded.directions) == set(trained.directions)
        # Weights identical -> identical predictions.
        direction = next(iter(trained.directions))
        original = trained.directions[direction]
        restored = loaded.directions[direction]
        features = np.zeros(FEATURE_COUNT)
        x = original.feature_standardizer.transform(features)
        p1, l1, _ = original.model.predict_step(x, original.model.initial_state())
        x2 = restored.feature_standardizer.transform(features)
        p2, l2, _ = restored.model.predict_step(x2, restored.model.initial_state())
        assert p1 == pytest.approx(p2)
        assert l1 == pytest.approx(l2)

    def test_latency_transform_roundtrip(self, trace_output):
        trained = train_cluster_model(
            trace_output.records, trace_output.extractor, config=FAST_MICRO
        )
        bundle = next(iter(trained.directions.values()))
        # norm 0 -> exp(mean): the geometric-mean latency.
        assert bundle.latency_from_norm(0.0) == pytest.approx(
            math.exp(bundle.latency_mean)
        )
        assert bundle.latency_from_norm(1.0) > bundle.latency_from_norm(0.0)
