"""Tests for Entity/Timer helpers and the statistics monitors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.entities import Entity, Timer
from repro.des.kernel import Simulator
from repro.des.monitors import Counter, Monitor, TimeSeries


class TestEntity:
    def test_schedule_relative(self, sim):
        entity = Entity(sim, "thing")
        fired = []
        entity.schedule(1.5, lambda: fired.append(entity.now))
        sim.run()
        assert fired == [1.5]

    def test_now_tracks_sim(self, sim):
        entity = Entity(sim, "thing")
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert entity.now == sim.now == 2.0


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(3.0)
        sim.run()
        assert fired == [3.0]
        assert not timer.armed

    def test_rearm_replaces_previous(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(5.0)
        timer.arm(1.0)
        sim.run()
        assert fired == [1.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_expiry_visible_while_armed(self, sim):
        timer = Timer(sim, lambda: None)
        assert timer.expiry is None
        timer.arm(4.0)
        assert timer.expiry == 4.0

    def test_cancel_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.cancel()
        timer.cancel()  # no error

    def test_rearm_inside_callback(self, sim):
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 3:
                timer.arm(1.0)

        timer = Timer(sim, tick)
        timer.arm(1.0)
        sim.run()
        assert count[0] == 3


class TestMonitor:
    def test_statistics(self):
        m = Monitor("x")
        m.extend([1.0, 2.0, 3.0, 4.0])
        assert m.mean() == 2.5
        assert m.min() == 1.0
        assert m.max() == 4.0
        assert len(m) == 4
        assert m.percentile(50) == 2.5

    def test_empty_monitor_nan(self):
        m = Monitor("x")
        assert np.isnan(m.mean())
        assert np.isnan(m.percentile(99))


class TestTimeSeries:
    def test_window_selection(self):
        ts = TimeSeries("q")
        for t in range(10):
            ts.record(float(t), float(t * 10))
        window = ts.window(2.0, 5.0)
        assert window.tolist() == [20.0, 30.0, 40.0]

    def test_resample_mean(self):
        ts = TimeSeries("lat")
        ts.record(0.1, 1.0)
        ts.record(0.2, 3.0)
        ts.record(1.5, 10.0)
        times, means = ts.resample_mean(1.0)
        assert times.tolist() == [0.0, 1.0]
        assert means.tolist() == [2.0, 10.0]

    def test_resample_empty(self):
        ts = TimeSeries("lat")
        times, means = ts.resample_mean(1.0)
        assert times.size == 0 and means.size == 0


class TestCounter:
    def test_increments(self):
        c = Counter("drops")
        c.increment()
        c.increment(5)
        assert int(c) == 6

    def test_negative_rejected(self):
        c = Counter("drops")
        with pytest.raises(ValueError):
            c.increment(-1)
