"""Unit tests for the DES kernel: ordering, cancellation, accounting."""

from __future__ import annotations

import pytest

from repro.des.errors import SchedulingError, SimulationError
from repro.des.kernel import EventQueue, Simulator


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_equal_times_fifo_by_sequence(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        assert q.pop() is first
        assert q.pop() is second

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        low_priority = q.push(1.0, lambda: None, priority=5)
        high_priority = q.push(1.0, lambda: None, priority=0)
        assert q.pop() is high_priority
        assert q.pop() is low_priority

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        doomed = q.push(1.0, lambda: None)
        survivor = q.push(2.0, lambda: None)
        doomed.cancel()
        assert q.peek_time() == 2.0
        assert q.pop() is survivor
        assert q.pop() is None

    def test_empty_queue(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert q.pop() is None
        assert len(q) == 0


class TestSimulatorScheduling:
    def test_run_executes_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_nonfinite_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda: None)

    def test_schedule_at_now_allowed(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(1.0, lambda: None))
        sim.run()
        assert sim.events_executed == 2

    def test_zero_delay_executes_at_current_time(self):
        sim = Simulator()
        times = []
        def outer():
            sim.schedule(0.0, lambda: times.append(sim.now))
        sim.schedule(1.5, outer)
        sim.run()
        assert times == [1.5]


class TestSimulatorRun:
    def test_until_horizon_advances_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.events_executed == 0
        sim.run(until=10.0)
        assert sim.events_executed == 1

    def test_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_event_at_horizon_boundary_executes(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(True))
        sim.run(until=2.0)
        assert fired == [True]

    def test_max_events_limit(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=4)
        assert sim.events_executed == 4

    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_run_not_reentrant(self):
        sim = Simulator()
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()
        sim.schedule(1.0, reenter)
        sim.run()

    def test_events_spawned_during_run_execute(self):
        sim = Simulator()
        fired = []
        def cascade(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: cascade(depth + 1))
        sim.schedule(0.5, lambda: cascade(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.5


class TestAccounting:
    def test_counts(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(e1)
        sim.run()
        assert sim.events_scheduled == 2
        assert sim.events_cancelled == 1
        assert sim.events_executed == 1

    def test_cancel_executed_event_not_counted(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(event)
        assert sim.events_cancelled == 0

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.events_cancelled == 1

    def test_sim_seconds_per_second_positive(self):
        sim = Simulator()
        for i in range(100):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.wallclock_elapsed > 0
        assert sim.sim_seconds_per_second() > 0
