"""Property-based tests of the event queue and kernel invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.kernel import EventQueue, Simulator


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    )
)
def test_queue_pops_sorted(times):
    """Whatever insertion order, pops come out time-sorted."""
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while True:
        event = q.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(times)


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=100,
    ),
    cancel_mask=st.lists(st.booleans(), min_size=1, max_size=100),
)
def test_queue_respects_cancellation(times, cancel_mask):
    """Cancelled events never surface."""
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in times]
    cancelled = {
        i for i, cancel in enumerate(cancel_mask[: len(events)]) if cancel
    }
    expected = []
    for i, event in enumerate(events):
        if i in cancelled:
            event.cancel()
        else:
            expected.append(event.time)
    popped = []
    while True:
        event = q.pop()
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(expected)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50)
def test_simulated_time_is_monotone(delays):
    """sim.now never runs backwards during a run."""
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.events_executed == len(delays)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20)
def test_named_streams_independent_of_order(seed):
    """Drawing from stream A never perturbs stream B."""
    from repro.des.rng import RandomStreams

    streams1 = RandomStreams(seed)
    a_first = streams1.stream("a").random(5).tolist()
    b_after = streams1.stream("b").random(5).tolist()

    streams2 = RandomStreams(seed)
    b_first = streams2.stream("b").random(5).tolist()
    a_after = streams2.stream("a").random(5).tolist()

    assert a_first == a_after
    assert b_after == b_first
