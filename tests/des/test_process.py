"""Tests for the generator-based process API."""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.des.process import Delay, Process, Signal


class TestDelay:
    def test_sleep_advances_time(self, sim):
        log = []

        def body():
            log.append(sim.now)
            yield Delay(1.5)
            log.append(sim.now)
            yield Delay(0.5)
            log.append(sim.now)

        Process(sim, body())
        sim.run()
        assert log == [0.0, 1.5, 2.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)

    def test_return_value_captured(self, sim):
        def body():
            yield Delay(1.0)
            return "done"

        process = Process(sim, body())
        sim.run()
        assert process.result == "done"
        assert not process.alive


class TestSignal:
    def test_wakes_waiter_with_value(self, sim):
        signal = Signal(sim)
        received = []

        def waiter():
            value = yield signal
            received.append((sim.now, value))

        Process(sim, waiter())
        sim.schedule(3.0, lambda: signal.fire("payload"))
        sim.run()
        assert received == [(3.0, "payload")]

    def test_multiple_waiters_all_wake(self, sim):
        signal = Signal(sim)
        woken = []

        def waiter(tag):
            yield signal
            woken.append(tag)

        for tag in ("a", "b", "c"):
            Process(sim, waiter(tag))
        sim.schedule(1.0, lambda: signal.fire())
        sim.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_already_fired_signal_continues_immediately(self, sim):
        signal = Signal(sim)
        signal.fire(7)
        got = []

        def waiter():
            value = yield signal
            got.append((sim.now, value))

        Process(sim, waiter())
        sim.run()
        assert got == [(0.0, 7)]

    def test_double_fire_rejected(self, sim):
        signal = Signal(sim)
        signal.fire()
        with pytest.raises(RuntimeError):
            signal.fire()


class TestProcessComposition:
    def test_join_on_child_process(self, sim):
        order = []

        def child():
            yield Delay(2.0)
            order.append("child")
            return 10

        def parent():
            child_process = Process(sim, child(), name="child")
            value = yield child_process
            order.append(("parent", sim.now, value))

        Process(sim, parent(), name="parent")
        sim.run()
        assert order == ["child", ("parent", 2.0, 10)]

    def test_pipeline_of_processes(self, sim):
        """Producer fires a signal per item; consumer processes them."""
        handoff = []
        done = Signal(sim, "done")

        def producer():
            for i in range(3):
                yield Delay(1.0)
                handoff.append(i)
            done.fire(len(handoff))

        def consumer():
            count = yield done
            return count * 100

        Process(sim, producer())
        consumer_process = Process(sim, consumer())
        sim.run()
        assert consumer_process.result == 300
        assert sim.now == 3.0

    def test_yielding_garbage_raises(self, sim):
        def body():
            yield "not a waitable"

        Process(sim, body())
        with pytest.raises(TypeError):
            sim.run()

    def test_exception_in_process_propagates(self, sim):
        def body():
            yield Delay(1.0)
            raise RuntimeError("boom")

        process = Process(sim, body())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert not process.alive
