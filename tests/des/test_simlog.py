"""Tests for simulation-time-aware logging."""

from __future__ import annotations

import logging

from repro.des.kernel import Simulator
from repro.des.simlog import SimTimeAdapter, get_sim_logger


class TestSimLogger:
    def test_prefix_contains_sim_time(self, sim, caplog):
        log = get_sim_logger(sim, name="repro.test")
        sim.schedule(1.25, lambda: log.info("hello"))
        with caplog.at_level(logging.INFO, logger="repro.test"):
            sim.run()
        assert len(caplog.records) == 1
        assert "[t=1.250000000] hello" in caplog.records[0].getMessage()

    def test_component_tag(self, sim, caplog):
        log = get_sim_logger(sim, name="repro.test", component="tor-0")
        with caplog.at_level(logging.WARNING, logger="repro.test"):
            log.warning("queue full")
        assert "tor-0: queue full" in caplog.records[0].getMessage()

    def test_for_component_child(self, sim, caplog):
        base = get_sim_logger(sim, name="repro.test")
        child = base.for_component("agg-1")
        assert isinstance(child, SimTimeAdapter)
        with caplog.at_level(logging.INFO, logger="repro.test"):
            child.info("up")
        assert "agg-1: up" in caplog.records[0].getMessage()

    def test_time_advances_in_prefix(self, sim, caplog):
        log = get_sim_logger(sim, name="repro.test")
        for t in (0.5, 2.0):
            sim.schedule(t, lambda: log.info("tick"))
        with caplog.at_level(logging.INFO, logger="repro.test"):
            sim.run()
        messages = [r.getMessage() for r in caplog.records]
        assert messages[0].startswith("[t=0.500000000]")
        assert messages[1].startswith("[t=2.000000000]")

    def test_formatting_args_pass_through(self, sim, caplog):
        log = get_sim_logger(sim, name="repro.test")
        with caplog.at_level(logging.INFO, logger="repro.test"):
            log.info("value %d of %s", 7, "nine")
        assert "value 7 of nine" in caplog.records[0].getMessage()
