"""EpochFlowSimulator: online stepping, handoffs, and batch equivalence."""

from __future__ import annotations

import pytest

from repro.flowsim import EpochFlowSimulator, FlowLevelSimulator, FlowSpec
from repro.flowsim.workload import generate_workload
from repro.obs import MetricsRegistry
from repro.traffic.distributions import web_search_sizes


def _spec(flow_id=0, src="server-c0-t0-s0", dst="server-c1-t0-s0",
          size_bytes=1_000_000, start_time=0.0) -> FlowSpec:
    return FlowSpec(
        flow_id=flow_id, src=src, dst=dst,
        size_bytes=size_bytes, start_time=start_time,
    )


class TestOnlineStepping:
    def test_single_flow_completes_at_bottleneck_rate(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.admit(_spec(size_bytes=125_000))  # 1 Mbit
        # Edge links are 10 Gbps: 1 Mbit / 10 Gbps = 100 us.
        done = engine.step_to(99e-6)
        assert done == []
        done = engine.step_to(101e-6)
        assert len(done) == 1
        assert done[0].fct == pytest.approx(100e-6)

    def test_completions_surface_through_callback(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        seen = []
        engine.on_completion = seen.append
        engine.admit(_spec(size_bytes=125_000))
        engine.run_to_completion()
        assert len(seen) == 1
        assert seen[0].spec.flow_id == 0

    def test_backwards_step_rejected(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.step_to(1e-3)
        with pytest.raises(ValueError, match="backwards"):
            engine.step_to(0.5e-3)

    def test_out_of_order_admission_rejected(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.admit(_spec(flow_id=0, start_time=1e-3))
        with pytest.raises(ValueError, match="in order"):
            engine.admit(_spec(flow_id=1, start_time=0.5e-3))

    def test_duplicate_live_id_rejected(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.admit(_spec(flow_id=5))
        with pytest.raises(ValueError, match="duplicate"):
            engine.admit(_spec(flow_id=5))

    def test_malformed_spec_rejected_at_admit(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        with pytest.raises(ValueError, match="size_bytes"):
            engine.admit(_spec(size_bytes=0))


class TestExtractAndResume:
    def test_extract_reports_remaining_bytes(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.admit(_spec(size_bytes=125_000))
        engine.step_to(50e-6)  # halfway at 10 Gbps
        moved = engine.extract(lambda spec: True)
        assert engine.active_flows == 0
        (spec, remaining), = moved
        assert spec.flow_id == 0
        assert remaining == pytest.approx(62_500)

    def test_extract_is_selective(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.admit(_spec(flow_id=0, src="server-c0-t0-s0"))
        engine.admit(_spec(flow_id=1, src="server-c0-t0-s1"))
        moved = engine.extract(lambda spec: spec.flow_id == 1)
        assert [spec.flow_id for spec, _ in moved] == [1]
        assert [s.flow_id for s in engine.active_specs()] == [0]

    def test_resume_drains_only_remaining_bytes(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        engine.resume(_spec(size_bytes=125_000), remaining_bytes=62_500)
        done = engine.run_to_completion()
        # Half the bytes at 10 Gbps: 50 us, not the 100 us a fresh
        # admission of the full size would take.
        assert done[0].completion_time == pytest.approx(50e-6)

    def test_extracted_flows_free_bandwidth(self, small_clos):
        engine = EpochFlowSimulator(small_clos)
        # Two flows from the same server share its 10 Gbps edge link.
        engine.admit(_spec(flow_id=0, dst="server-c1-t0-s0"))
        engine.admit(_spec(flow_id=1, dst="server-c1-t0-s1"))
        engine.step_to(1e-6)
        engine.extract(lambda spec: spec.flow_id == 1)
        engine.step_to(2e-6)
        remaining = {s.flow_id for s in engine.active_specs()}
        assert remaining == {0}


class TestBatchOnlineEquivalence:
    def test_same_workload_same_completions(self, small_clos):
        flows = generate_workload(
            small_clos, duration_s=0.01, load=0.3,
            sizes=web_search_sizes(), seed=77,
        )
        assert len(flows) > 10

        batch = FlowLevelSimulator(small_clos).run(flows)

        engine = EpochFlowSimulator(small_clos)
        online: list = []
        engine.on_completion = online.append
        ordered = sorted(flows, key=lambda f: (f.start_time, f.flow_id))
        for spec, nxt in zip(ordered, ordered[1:] + [None]):
            engine.admit(spec)
            if nxt is not None:
                # Step to an irregular epoch boundary between arrivals
                # to exercise the external clock.
                engine.step_to((spec.start_time + nxt.start_time) / 2)
        engine.run_to_completion()
        online.sort(key=lambda r: r.spec.flow_id)

        assert len(online) == len(batch)
        for a, b in zip(online, batch):
            assert a.spec == b.spec
            assert a.completion_time == pytest.approx(b.completion_time)


class TestObsCounters:
    def test_counters_published(self, small_clos):
        registry = MetricsRegistry(enabled=True)
        engine = EpochFlowSimulator(small_clos, metrics=registry)
        engine.admit(_spec(flow_id=0))
        engine.admit(_spec(flow_id=1, src="server-c0-t0-s1"))
        engine.run_to_completion()
        snapshot = {
            c["name"]: c["value"] for c in registry.snapshot()["counters"]
        }
        assert snapshot["flowsim.flows_completed"] == 2
        assert snapshot["flowsim.rate_recomputes"] >= 1
        assert snapshot["flowsim.rate_recomputes"] == engine.rate_recomputations
