"""Tests for the fluid flow-level simulator."""

from __future__ import annotations

import pytest

from repro.flowsim.simulator import FlowLevelSimulator, FlowSpec
from repro.flowsim.workload import generate_workload
from repro.topology.clos import ClosParams, build_clos, server_name
from repro.traffic.distributions import web_search_sizes


def _spec(flow_id, src, dst, size, start=0.0):
    return FlowSpec(flow_id=flow_id, src=src, dst=dst, size_bytes=size, start_time=start)


class TestFlowLevelSimulator:
    def test_single_flow_line_rate(self, small_clos):
        simulator = FlowLevelSimulator(small_clos)
        size = 10_000_000
        src, dst = server_name(0, 0, 0), server_name(1, 0, 0)
        results = simulator.run([_spec(0, src, dst, size)])
        assert len(results) == 1
        assert results[0].fct == pytest.approx(size * 8 / 10e9)

    def test_two_flows_share_bottleneck(self, small_clos):
        """Two flows into the same destination NIC split it fairly."""
        dst = server_name(0, 0, 0)
        size = 10_000_000
        flows = [
            _spec(0, server_name(0, 0, 1), dst, size),
            _spec(1, server_name(0, 0, 2), dst, size),
        ]
        results = FlowLevelSimulator(small_clos).run(flows)
        # Both bottlenecked at the shared ToR->server link: 5 Gbps each.
        for result in results:
            assert result.fct == pytest.approx(size * 8 / 5e9)

    def test_staggered_arrivals(self, small_clos):
        """A flow arriving mid-way slows the first one down."""
        dst = server_name(0, 0, 0)
        size = 10_000_000
        solo_fct = size * 8 / 10e9
        flows = [
            _spec(0, server_name(0, 0, 1), dst, size, start=0.0),
            _spec(1, server_name(0, 0, 2), dst, size, start=solo_fct / 2),
        ]
        results = FlowLevelSimulator(small_clos).run(flows)
        first = next(r for r in results if r.spec.flow_id == 0)
        assert first.fct > solo_fct
        assert first.fct < 2 * solo_fct

    def test_flow_conservation(self, small_clos):
        """Every submitted flow completes exactly once, after start."""
        flows = generate_workload(
            small_clos, duration_s=0.01, load=0.3, sizes=web_search_sizes(), seed=2
        )
        results = FlowLevelSimulator(small_clos).run(flows)
        assert len(results) == len(flows)
        assert {r.spec.flow_id for r in results} == {f.flow_id for f in flows}
        for result in results:
            assert result.completion_time > result.spec.start_time

    def test_duplicate_flow_ids_rejected(self, small_clos):
        src, dst = server_name(0, 0, 0), server_name(0, 0, 1)
        with pytest.raises(ValueError):
            FlowLevelSimulator(small_clos).run(
                [_spec(1, src, dst, 100), _spec(1, dst, src, 100)]
            )

    def test_empty_workload(self, small_clos):
        assert FlowLevelSimulator(small_clos).run([]) == []

    def test_much_faster_than_packet_sim(self, small_clos):
        """The whole point of flow-level simulation: event count is
        tiny (2 per flow vs thousands per flow for packets)."""
        flows = generate_workload(
            small_clos, duration_s=0.02, load=0.3, sizes=web_search_sizes(), seed=3
        )
        simulator = FlowLevelSimulator(small_clos)
        simulator.run(flows)
        # Rate recomputations = arrivals + completions = 2 per flow.
        assert simulator.rate_recomputations <= 2 * len(flows)


class TestWorkloadPersistence:
    def test_save_load_roundtrip(self, small_clos, tmp_path):
        from repro.flowsim.workload import load_workload, save_workload

        flows = generate_workload(
            small_clos, 0.005, 0.2, web_search_sizes(), seed=9
        )
        path = tmp_path / "workload.json"
        save_workload(flows, path)
        assert load_workload(path) == flows

    def test_duplicate_ids_rejected_on_load(self, tmp_path):
        import json

        from repro.flowsim.workload import load_workload

        row = {"flow_id": 1, "src": "a", "dst": "b", "size_bytes": 10, "start_time": 0.0}
        (tmp_path / "bad.json").write_text(json.dumps([row, row]))
        with pytest.raises(ValueError):
            load_workload(tmp_path / "bad.json")


class TestWorkloadGeneration:
    def test_deterministic(self, small_clos):
        a = generate_workload(small_clos, 0.01, 0.3, web_search_sizes(), seed=5)
        b = generate_workload(small_clos, 0.01, 0.3, web_search_sizes(), seed=5)
        assert a == b

    def test_seed_changes_workload(self, small_clos):
        a = generate_workload(small_clos, 0.01, 0.3, web_search_sizes(), seed=5)
        b = generate_workload(small_clos, 0.01, 0.3, web_search_sizes(), seed=6)
        assert a != b

    def test_load_scales_flow_count(self, small_clos):
        low = generate_workload(small_clos, 0.05, 0.1, web_search_sizes(), seed=7)
        high = generate_workload(small_clos, 0.05, 0.4, web_search_sizes(), seed=7)
        assert len(high) > 2 * len(low)

    def test_invalid_duration(self, small_clos):
        with pytest.raises(ValueError):
            generate_workload(small_clos, 0.0, 0.3, web_search_sizes(), seed=1)
