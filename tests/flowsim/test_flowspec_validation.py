"""FlowSpec validation: malformed flows are rejected with named fields."""

from __future__ import annotations

import pytest

from repro.flowsim import (
    FlowLevelSimulator,
    FlowSpec,
    validate_flow_spec,
    validate_flow_specs,
)
from repro.topology.routing import EcmpRouting


def _spec(**overrides) -> FlowSpec:
    base = dict(
        flow_id=0,
        src="server-c0-t0-s0",
        dst="server-c1-t0-s0",
        size_bytes=10_000,
        start_time=0.0,
    )
    base.update(overrides)
    return FlowSpec(**base)


class TestValidateFlowSpec:
    def test_valid_spec_passes(self, small_clos):
        validate_flow_spec(_spec(), small_clos)

    def test_zero_size_rejected(self, small_clos):
        with pytest.raises(ValueError, match="size_bytes must be positive"):
            validate_flow_spec(_spec(size_bytes=0), small_clos)

    def test_negative_size_rejected(self, small_clos):
        with pytest.raises(ValueError, match="size_bytes must be positive"):
            validate_flow_spec(_spec(size_bytes=-3), small_clos)

    def test_negative_start_rejected(self, small_clos):
        with pytest.raises(ValueError, match="start_time"):
            validate_flow_spec(_spec(start_time=-1e-9), small_clos)

    def test_nan_start_rejected(self, small_clos):
        with pytest.raises(ValueError, match="start_time"):
            validate_flow_spec(_spec(start_time=float("nan")), small_clos)

    def test_unknown_src_rejected(self, small_clos):
        with pytest.raises(ValueError, match="src 'server-c9-t9-s9'"):
            validate_flow_spec(_spec(src="server-c9-t9-s9"), small_clos)

    def test_unknown_dst_rejected(self, small_clos):
        with pytest.raises(ValueError, match="dst"):
            validate_flow_spec(_spec(dst="ghost"), small_clos)

    def test_non_server_endpoint_unroutable(self, small_clos):
        with pytest.raises(ValueError, match="unroutable"):
            validate_flow_spec(_spec(src="tor-c0-0"), small_clos)
        with pytest.raises(ValueError, match="unroutable"):
            validate_flow_spec(_spec(dst="core-0"), small_clos)

    def test_same_host_rejected(self, small_clos):
        with pytest.raises(ValueError, match="src == dst"):
            validate_flow_spec(
                _spec(dst="server-c0-t0-s0"), small_clos
            )

    def test_error_names_the_flow(self, small_clos):
        with pytest.raises(ValueError, match="flow 7"):
            validate_flow_spec(_spec(flow_id=7, size_bytes=0), small_clos)

    def test_routing_check_accepts_routable_pair(self, small_clos):
        routing = EcmpRouting(small_clos)
        validate_flow_spec(_spec(), small_clos, routing)


class TestValidateFlowSpecs:
    def test_duplicate_flow_ids_rejected(self, small_clos):
        flows = [_spec(flow_id=1), _spec(flow_id=1, start_time=1e-3)]
        with pytest.raises(ValueError, match="duplicate flow ids"):
            validate_flow_specs(flows, small_clos)

    def test_all_flows_checked(self, small_clos):
        flows = [_spec(flow_id=0), _spec(flow_id=1, size_bytes=0)]
        with pytest.raises(ValueError, match="flow 1"):
            validate_flow_specs(flows, small_clos)


class TestSimulatorRejectsMalformedWorkloads:
    def test_run_rejects_zero_size(self, small_clos):
        simulator = FlowLevelSimulator(small_clos)
        with pytest.raises(ValueError, match="size_bytes"):
            simulator.run([_spec(size_bytes=0)])

    def test_run_rejects_unknown_endpoint(self, small_clos):
        simulator = FlowLevelSimulator(small_clos)
        with pytest.raises(ValueError, match="not in the topology"):
            simulator.run([_spec(dst="nowhere")])

    def test_run_rejects_duplicate_ids(self, small_clos):
        simulator = FlowLevelSimulator(small_clos)
        with pytest.raises(ValueError, match="duplicate"):
            simulator.run([_spec(flow_id=3), _spec(flow_id=3)])
