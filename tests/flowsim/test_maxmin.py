"""Tests for max-min fair allocation, including fairness properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.maxmin import max_min_fair_rates


class TestMaxMinBasics:
    def test_single_flow_gets_capacity(self):
        rates = max_min_fair_rates([["l1"]], {"l1": 10.0})
        assert rates == [10.0]

    def test_equal_split_on_shared_link(self):
        rates = max_min_fair_rates([["l1"], ["l1"], ["l1"]], {"l1": 9.0})
        assert rates == [3.0, 3.0, 3.0]

    def test_classic_three_flow_example(self):
        """Two links: A crosses both, B on link1, C on link2, caps 1.
        Max-min: A=B=C=0.5 only if both links bind equally; with caps
        (1, 2): link1 fair share 0.5 freezes A and B; C then gets 1.5."""
        flows = [["l1", "l2"], ["l1"], ["l2"]]
        rates = max_min_fair_rates(flows, {"l1": 1.0, "l2": 2.0})
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(1.5)

    def test_empty_path_unconstrained(self):
        rates = max_min_fair_rates([[], ["l1"]], {"l1": 5.0})
        assert rates[0] == float("inf")
        assert rates[1] == 5.0

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_fair_rates([["ghost"]], {"l1": 1.0})

    def test_no_flows(self):
        assert max_min_fair_rates([], {"l1": 1.0}) == []


@st.composite
def _random_instance(draw):
    num_links = draw(st.integers(1, 6))
    capacities = {
        f"l{i}": draw(st.floats(min_value=0.5, max_value=100.0)) for i in range(num_links)
    }
    num_flows = draw(st.integers(1, 10))
    flows = []
    for _ in range(num_flows):
        k = draw(st.integers(1, num_links))
        flows.append([f"l{i}" for i in draw(
            st.lists(st.integers(0, num_links - 1), min_size=1, max_size=k, unique=True)
        )])
    return flows, capacities


class TestMaxMinProperties:
    @given(_random_instance())
    @settings(max_examples=100)
    def test_feasibility(self, instance):
        """No link is oversubscribed."""
        flows, capacities = instance
        rates = max_min_fair_rates(flows, capacities)
        usage = {link: 0.0 for link in capacities}
        for links, rate in zip(flows, rates):
            for link in links:
                usage[link] += rate
        for link, used in usage.items():
            assert used <= capacities[link] * (1 + 1e-9)

    @given(_random_instance())
    @settings(max_examples=100)
    def test_bottleneck_saturation(self, instance):
        """Every flow has at least one saturated link (Pareto
        efficiency of max-min allocations)."""
        flows, capacities = instance
        rates = max_min_fair_rates(flows, capacities)
        usage = {link: 0.0 for link in capacities}
        for links, rate in zip(flows, rates):
            for link in links:
                usage[link] += rate
        for links, rate in zip(flows, rates):
            saturated = any(
                usage[link] >= capacities[link] * (1 - 1e-9) for link in links
            )
            assert saturated, "a flow could be sped up without hurting anyone"

    @given(_random_instance())
    @settings(max_examples=100)
    def test_rates_positive(self, instance):
        flows, capacities = instance
        rates = max_min_fair_rates(flows, capacities)
        assert all(rate > 0 for rate in rates)

    @given(_random_instance())
    @settings(max_examples=50)
    def test_symmetry(self, instance):
        """Flows with identical paths get identical rates."""
        flows, capacities = instance
        flows = flows + [flows[0]]  # duplicate the first flow's path
        rates = max_min_fair_rates(flows, capacities)
        assert rates[0] == pytest.approx(rates[-1])

    @given(_random_instance())
    @settings(max_examples=100)
    def test_max_min_characterization(self, instance):
        """The classic max-min condition: every flow has a saturated
        link on its path where it is among the largest flows — so its
        rate can only rise by lowering a flow no bigger than itself."""
        flows, capacities = instance
        rates = max_min_fair_rates(flows, capacities)
        usage = {link: 0.0 for link in capacities}
        for links, rate in zip(flows, rates):
            for link in links:
                usage[link] += rate
        for links, rate in zip(flows, rates):
            owns_bottleneck = False
            for link in links:
                if usage[link] < capacities[link] * (1 - 1e-9):
                    continue  # not saturated
                peers = [
                    other_rate
                    for other_links, other_rate in zip(flows, rates)
                    if link in other_links
                ]
                if rate >= max(peers) * (1 - 1e-9):
                    owns_bottleneck = True
                    break
            assert owns_bottleneck, (
                "flow lacks a saturated link where it is maximal — "
                "allocation is not max-min fair"
            )

    @given(_random_instance())
    @settings(max_examples=100)
    def test_pareto_efficiency_no_slack_for_any_flow(self, instance):
        """Total allocation is Pareto-efficient: increasing any single
        flow's rate by any epsilon violates some link capacity."""
        flows, capacities = instance
        rates = max_min_fair_rates(flows, capacities)
        usage = {link: 0.0 for link in capacities}
        for links, rate in zip(flows, rates):
            for link in links:
                usage[link] += rate
        epsilon = 1e-6
        for links in flows:
            slack = min(capacities[link] - usage[link] for link in links)
            assert slack <= epsilon, (
                f"flow has {slack} spare capacity on every link of its "
                "path; the allocation wastes bandwidth"
            )
