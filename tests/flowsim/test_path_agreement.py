"""Fluid/packet path identity across tier handoffs.

Regression for a flow-identity bug: the fluid tier used to hash flows
with a synthetic ``10_000 + flow_id`` source port while the packet tier
hashed the host-allocated ephemeral port, so a promoted flow could be
charged on one path and transmitted on another.  Specs now carry the
real port pair; both tiers must name the same links.
"""

from __future__ import annotations

from repro.des.kernel import Simulator
from repro.flowsim.epoch import EpochFlowSimulator
from repro.flowsim.simulator import FlowSpec
from repro.net.network import Network
from repro.net.packet import Packet
from repro.topology.clos import ClosParams, build_clos
from repro.topology.routing import EcmpRouting, ecmp_hash, name_key

SRC, DST = "server-c0-t0-s0", "server-c1-t1-s3"


def _packet_links(routing: EcmpRouting, src_port: int, dst_port: int):
    packet = Packet(
        src=SRC, dst=DST, src_port=src_port, dst_port=dst_port, payload_bytes=1
    )
    path = routing.path(SRC, DST, packet.flow_hash())
    return list(zip(path[:-1], path[1:]))


def test_fluid_links_match_packet_path_for_real_ports():
    topology = build_clos(ClosParams(clusters=2))
    routing = EcmpRouting(topology)
    fluid = EpochFlowSimulator(topology, routing=routing)
    # Every ephemeral port a host could allocate must agree, not just
    # one lucky hash.
    for src_port in range(10_000, 10_040):
        spec = FlowSpec(
            flow_id=7, src=SRC, dst=DST, size_bytes=10_000,
            start_time=0.0, src_port=src_port, dst_port=80,
        )
        assert fluid._flow_links(spec) == _packet_links(routing, src_port, 80)


def test_legacy_specs_fall_back_to_synthetic_port():
    topology = build_clos(ClosParams(clusters=2))
    routing = EcmpRouting(topology)
    fluid = EpochFlowSimulator(topology, routing=routing)
    spec = FlowSpec(flow_id=3, src=SRC, dst=DST, size_bytes=10_000, start_time=0.0)
    expected_hash = ecmp_hash(name_key(SRC), name_key(DST), 10_003, 80)
    path = routing.path(SRC, DST, expected_hash)
    assert fluid._flow_links(spec) == list(zip(path[:-1], path[1:]))


def test_diversion_port_matches_later_packet_launch():
    """The cascade reserves the host's next ephemeral port at diversion
    time; a packet flow launched with that port must traverse exactly
    the links the fluid tier charged."""
    topology = build_clos(ClosParams(clusters=2))
    sim = Simulator(seed=5)
    routing = EcmpRouting(topology)
    network = Network(sim, topology, routing=routing)
    fluid = EpochFlowSimulator(topology, routing=routing)

    src_port = network.host(SRC).allocate_port()  # what dispatch_flow does
    spec = FlowSpec(
        flow_id=0, src=SRC, dst=DST, size_bytes=50_000,
        start_time=0.0, src_port=src_port, dst_port=80,
    )
    charged = fluid._flow_links(spec)
    assert charged == _packet_links(routing, src_port, 80)

    # Promotion relaunch: the packet flow pins the reserved port, so
    # its first data packet hashes onto the charged path.
    sender = network.host(SRC).open_flow(
        network.host(DST), 50_000, src_port=spec.src_port
    )
    assert sender.src_port == src_port
    # Port sequences stay aligned: the next host allocation continues
    # after the reserved port rather than reusing it.
    assert network.host(SRC).allocate_port() == src_port + 1
