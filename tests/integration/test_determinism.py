"""Whole-run determinism: the foundation of every comparison here.

Identical seeds must give bit-identical measurements for full runs,
hybrid runs, flow-level runs, and trained models — otherwise speedup
and accuracy comparisons would measure noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig, run_full_simulation
from repro.core.training import train_cluster_model
from repro.core.features import RegionFeatureExtractor
from repro.flowsim.simulator import FlowLevelSimulator
from repro.flowsim.workload import generate_workload
from repro.topology.clos import ClosParams, build_clos
from repro.traffic.distributions import web_search_sizes

CONFIG = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.2, duration_s=0.004, seed=91
)


def test_full_simulation_bit_identical():
    a = run_full_simulation(CONFIG).result
    b = run_full_simulation(CONFIG).result
    assert a.events_executed == b.events_executed
    assert a.drops == b.drops
    assert a.rtt_samples == b.rtt_samples
    assert a.fcts == b.fcts


def test_different_seed_differs():
    a = run_full_simulation(CONFIG).result
    from dataclasses import replace

    b = run_full_simulation(replace(CONFIG, seed=92)).result
    assert a.rtt_samples != b.rtt_samples


def test_trace_collection_deterministic():
    a = run_full_simulation(CONFIG, collect_cluster=1)
    b = run_full_simulation(CONFIG, collect_cluster=1)
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.entry_time == rb.entry_time
        assert ra.exit_time == rb.exit_time
        assert ra.dropped == rb.dropped


def test_trained_weights_bit_identical():
    micro = MicroModelConfig(
        hidden_size=8, num_layers=1, window=8, train_batches=10
    )
    outputs = []
    for _ in range(2):
        run = run_full_simulation(CONFIG, collect_cluster=1)
        extractor = RegionFeatureExtractor(
            run.extractor.topology, run.extractor.routing, 1
        )
        trained = train_cluster_model(run.records, extractor, config=micro)
        bundle = next(iter(trained.directions.values()))
        outputs.append(
            np.concatenate([p.value.ravel() for p in bundle.model.parameters()])
        )
    np.testing.assert_array_equal(outputs[0], outputs[1])


def test_flow_level_deterministic():
    topo = build_clos(CONFIG.clos)
    flows = generate_workload(topo, 0.004, 0.2, web_search_sizes(), seed=91)
    a = FlowLevelSimulator(topo).run(flows)
    b = FlowLevelSimulator(topo).run(flows)
    assert [(r.spec.flow_id, r.completion_time) for r in a] == [
        (r.spec.flow_id, r.completion_time) for r in b
    ]
