"""Integration tests: whole-system behaviour of the packet simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ExperimentConfig, run_full_simulation
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.config import TcpConfig
from repro.topology.clos import ClosParams, build_clos, server_name
from repro.traffic.apps import TrafficGenerator
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.distributions import web_search_sizes
from repro.traffic.matrix import IncastMatrix, UniformMatrix


class TestEndToEndSanity:
    def test_byte_conservation(self, small_clos):
        """Every completed flow delivered exactly its size; nothing
        is created or destroyed by the network."""
        sim = Simulator(seed=31)
        net = Network(sim, small_clos)
        fcts = []
        sizes = [100, 1460, 5000, 100_000, 1_000_000]
        receivers = []
        for i, size in enumerate(sizes):
            src = net.host(server_name(0, 0, i % 4))
            dst = net.host(server_name(1, 1, i % 4))
            sender = src.open_flow(dst, size, on_complete=fcts.append)
            key = (src.name, sender.dst_port, sender.src_port)
            receivers.append((dst._receivers[key], size))
            sender.start()
        sim.run(until=10.0)
        assert len(fcts) == len(sizes)
        for receiver, size in receivers:
            assert receiver.bytes_delivered == size

    def test_rtt_floor_across_fabric(self, small_clos):
        """No host ever observes an RTT below the 12-leg propagation
        plus serialization floor for cross-cluster flows."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.15, duration_s=0.005, seed=32
        )
        result = run_full_simulation(config).result
        assert len(result.rtt_samples) > 10
        assert min(result.rtt_samples) >= 4e-6  # >= 2-hop round trip

    def test_congestion_produces_drops_and_queueing(self):
        """High load must produce the congestion signatures the macro
        model keys on: drops and latency inflation."""
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.6, duration_s=0.008, seed=33
        )
        result = run_full_simulation(config).result
        assert result.drops > 0
        rtts = np.asarray(result.rtt_samples)
        assert rtts.max() > 5 * rtts.min()

    def test_drops_grow_with_load(self):
        """Absolute drop counts must grow sharply with offered load.
        (Even light load drops occasionally: two heavy-tailed flows
        colliding on one ECMP path overrun a 150 KB buffer, so the
        per-event rate is not a clean separator at these timescales.)"""
        drops = []
        for load in (0.05, 0.6):
            config = ExperimentConfig(
                clos=ClosParams(clusters=2), load=load, duration_s=0.005, seed=34
            )
            drops.append(run_full_simulation(config).result.drops)
        assert drops[1] > 3 * drops[0]

    def test_incast_collapses_throughput(self, small_clos):
        """The Section 2.1 pathology: enough synchronized senders to
        one sink force drops and timeouts."""
        sim = Simulator(seed=35)
        net = Network(
            sim,
            small_clos,
            config=NetworkConfig(
                tcp=TcpConfig(min_rto_s=0.01), queue_capacity_bytes=30_000
            ),
        )
        sink = net.host(server_name(0, 0, 0))
        senders = []
        for cluster in range(2):
            for tor in range(2):
                for slot in range(4):
                    name = server_name(cluster, tor, slot)
                    if name == sink.name:
                        continue
                    sender = net.host(name).open_flow(sink, 200_000)
                    senders.append(sender)
        for sender in senders:
            sender.start()
        sim.run(until=0.05)
        assert net.total_drops > 10
        assert sum(s.timeouts for s in senders) > 0

    def test_ecmp_balances_load(self, small_clos):
        """Aggregate forwarding counts on the two aggs of a cluster
        should be within 3x of each other under many flows."""
        sim = Simulator(seed=36)
        net = Network(sim, small_clos)
        gen = TrafficGenerator(
            sim,
            net,
            matrix=UniformMatrix(small_clos, intra_cluster_fraction=0.0),
            sizes=web_search_sizes(),
            arrivals=PoissonArrivals(5000.0),
            max_flows=60,
        )
        gen.start()
        sim.run(until=0.05)
        agg0 = net.switch("agg-c0-0").packets_forwarded
        agg1 = net.switch("agg-c0-1").packets_forwarded
        assert agg0 > 0 and agg1 > 0
        assert max(agg0, agg1) / max(min(agg0, agg1), 1) < 3.0

    def test_event_counts_scale_with_cluster_count(self):
        """Full simulation cost grows roughly linearly with the number
        of clusters at constant per-server load — the scaling wall the
        paper attacks."""
        events = []
        for clusters in (2, 4):
            config = ExperimentConfig(
                clos=ClosParams(clusters=clusters), load=0.2, duration_s=0.003,
                seed=37,
            )
            events.append(run_full_simulation(config).result.events_executed)
        assert events[1] > 1.5 * events[0]
