"""Generality of the approximation machinery (paper Section 7).

Three axes the paper calls out:

* other *protocols* — the pipeline end-to-end under DCTCP;
* other *network structures* — approximating leaf-spine racks;
* symmetry — any cluster can be the full-fidelity one.
"""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridConfig, HybridSimulation
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.region import Region
from repro.core.features import RegionFeatureExtractor
from repro.core.training import RegionTraceCollector, train_cluster_model
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.config import TcpConfig
from repro.topology.clos import ClosParams
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.topology.routing import EcmpRouting
from repro.traffic.apps import TrafficGenerator
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import web_search_sizes
from repro.traffic.matrix import UniformMatrix

FAST_MICRO = MicroModelConfig(hidden_size=16, num_layers=1, window=8, train_batches=40)


class TestDctcpPipeline:
    """The whole Figure 3 workflow with DCTCP as the transport."""

    def test_train_and_hybrid_under_dctcp(self):
        net_config = NetworkConfig(
            tcp=TcpConfig(dctcp=True), ecn_threshold_bytes=65_000
        )
        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.3, duration_s=0.006,
            seed=111, net=net_config,
        )
        trained, full_output = train_reusable_model(config, micro=FAST_MICRO)
        assert len(full_output.records) > 100
        result, hybrid = run_hybrid_simulation(config, trained)
        assert result.model_packets > 0
        assert result.flows_completed > 0
        # ECN marking actually happened somewhere in the full run.
        marked = [
            r for r in full_output.records if r.packet.ecn_capable
        ]
        assert marked, "DCTCP run produced no ECN-capable crossings"


class TestLeafSpineRackApproximation:
    """Region machinery on a non-Clos structure: approximate one
    leaf-spine rack (its ToR), spines stay full fidelity."""

    @pytest.fixture(scope="class")
    def leafspine_world(self):
        topo = build_leaf_spine(LeafSpineParams(tors=3, spines=2, servers_per_tor=4))
        sizes = web_search_sizes()
        rate = arrival_rate_for_load(0.3, len(topo.servers()), 10e9, sizes.mean())

        def build(sim, excluded=frozenset(), overrides=None):
            net = Network(
                sim, topo, NetworkConfig(),
                routing=EcmpRouting(topo),
                excluded_nodes=excluded,
                receiver_overrides=overrides or {},
            )
            gen = TrafficGenerator(
                sim, net, matrix=UniformMatrix(topo), sizes=sizes,
                arrivals=PoissonArrivals(rate),
            )
            return net, gen

        return topo, build

    def test_region_construction(self, leafspine_world):
        topo, _ = leafspine_world
        region = Region.cluster(topo, 1)  # rack 1: its ToR
        assert region.switches == frozenset({"tor-1"})
        assert len(region.shadow_servers) == 4

    def test_train_and_substitute_rack(self, leafspine_world):
        topo, build = leafspine_world
        region = Region.cluster(topo, 1)

        # Stage 1: full-fidelity trace of the rack boundary.
        sim = Simulator(seed=112)
        net, gen = build(sim)
        collector = RegionTraceCollector(net, region)
        gen.start()
        sim.run(until=0.01)
        records = collector.finalize()
        assert len(records) > 100

        # Stage 2: train.
        extractor = RegionFeatureExtractor(topo, net.routing, region)
        trained = train_cluster_model(records, extractor, config=FAST_MICRO)

        # Stage 3: substitute the ToR with the model.
        from repro.core.cluster_model import ApproximatedCluster

        sim2 = Simulator(seed=112)
        model_holder = {}

        def resolve(name):
            return model_holder["net"].hosts.get(name) or model_holder["net"].switches[name]

        model = ApproximatedCluster(
            sim=sim2, topology=topo, routing=EcmpRouting(topo), region=region,
            trained=trained, resolve_entity=resolve,
            rng=sim2.rng.stream("rack-model"),
        )
        net2, gen2 = build(
            sim2, excluded=frozenset({"tor-1"}), overrides={"tor-1": model}
        )
        model_holder["net"] = net2
        gen2.start()
        sim2.run(until=0.005)
        assert model.packets_handled > 0
        assert gen2.flows_completed > 0


class TestFullClusterSymmetry:
    def test_any_cluster_can_be_full_fidelity(self):
        config = ExperimentConfig(
            clos=ClosParams(clusters=3), load=0.25, duration_s=0.004, seed=113
        )
        train_config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.005, seed=114
        )
        trained, _ = train_reusable_model(train_config, micro=FAST_MICRO)
        for full_cluster in (0, 2):
            result, hybrid = run_hybrid_simulation(
                config, trained, hybrid=HybridConfig(full_cluster=full_cluster)
            )
            assert hybrid.full_cluster == full_cluster
            assert full_cluster not in hybrid.models
            assert len(result.rtt_samples) > 0
