"""The Figure 3 workflow as one integration test: simulate small ->
train -> substitute into a larger topology -> compare distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import ks_distance
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.training import TrainedClusterModel
from repro.topology.clos import ClosParams


@pytest.fixture(scope="module")
def pipeline_artifacts(tmp_path_factory):
    """Train once (module scope) with a mid-size budget."""
    config = ExperimentConfig(
        clos=ClosParams(clusters=2), load=0.25, duration_s=0.01, seed=41
    )
    micro = MicroModelConfig(
        hidden_size=32, num_layers=1, window=16, train_batches=150,
        learning_rate=3e-3,
    )
    trained, full_output = train_reusable_model(config, micro=micro)
    directory = tmp_path_factory.mktemp("bundle")
    trained.save(directory)
    return config, trained, full_output, directory


class TestWorkflow:
    def test_training_learned_something(self, pipeline_artifacts):
        _, trained, _, _ = pipeline_artifacts
        summary = trained.training_summary
        assert summary["ingress_final_loss"] < summary["ingress_initial_loss"]

    def test_reload_and_reuse_across_sizes(self, pipeline_artifacts):
        """The trained bundle (from a 2-cluster sim) drives a 4-cluster
        hybrid — the reuse the paper's Figure 3 promises."""
        config, _, _, directory = pipeline_artifacts
        loaded = TrainedClusterModel.load(directory)
        big = ExperimentConfig(
            clos=ClosParams(clusters=4), load=config.load, duration_s=0.004,
            seed=42,
        )
        result, hybrid = run_hybrid_simulation(big, loaded)
        assert len(hybrid.models) == 3
        assert result.model_packets > 0
        assert result.flows_completed > 0

    def test_rtt_distributions_compare(self, pipeline_artifacts):
        """Figure 4's comparison is meaningful: both simulations
        produce enough RTT samples and the KS distance is < 1 (the
        distributions overlap substantially)."""
        config, trained, full_output, _ = pipeline_artifacts
        hybrid_result, _ = run_hybrid_simulation(config, trained)
        ground_truth = full_output.result.rtt_samples
        approx = hybrid_result.rtt_samples
        assert len(ground_truth) > 20 and len(approx) > 20
        distance = ks_distance(ground_truth, approx)
        assert distance < 0.95
        # Same ballpark: medians within two orders of magnitude.
        ratio = np.median(approx) / np.median(ground_truth)
        assert 0.01 < ratio < 100

    def test_model_drop_rate_plausible(self, pipeline_artifacts):
        """A trained drop head should not drop wildly more than the
        region's ground-truth drop fraction."""
        config, trained, full_output, _ = pipeline_artifacts
        hybrid_result, hybrid = run_hybrid_simulation(config, trained)
        handled = hybrid.model_packets_handled()
        dropped = hybrid.model_drops()
        assert handled > 0
        ground_truth_rate = float(
            trained.training_summary.get("ingress_drop_fraction", 0.0)
        )
        assert dropped / handled < max(10 * ground_truth_rate, 0.2)

    def test_hybrid_speedup_positive_at_scale(self, pipeline_artifacts):
        """At 8 clusters the hybrid must beat the full simulation on
        wall-clock — the headline claim (Figure 5).  (At 2-4 clusters
        the numpy LSTM's per-packet cost can eat the fabric savings;
        the paper's claim is that speedup *grows with cluster count*.)"""
        config, trained, _, _ = pipeline_artifacts
        big = ExperimentConfig(
            clos=ClosParams(clusters=8), load=config.load, duration_s=0.004,
            seed=43,
        )
        full = run_full_simulation(big).result
        hybrid_result, _ = run_hybrid_simulation(big, trained)
        speedup = full.wallclock_seconds / hybrid_result.wallclock_seconds
        assert speedup > 1.0
