"""Determinism of the AI-factory scenarios.

The new degrees of freedom — routing policies, link-failure schedules,
collective workloads — must not cost determinism: same-seed runs are
byte-identical (``RunResult.determinism_signature``) across reruns and
with observability (metrics, tracing) on vs. off.
"""

from __future__ import annotations

from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.obs import MetricsRegistry
from repro.obs.trace import FlightRecorder
from repro.topology.clos import ClosParams

SCENARIO = dict(
    clos=ClosParams(clusters=2),
    load=0.15,
    duration_s=0.008,
    seed=31,
    routing={"policy": "flowlet", "flowlet_gap_s": 5e-5},
    failures=[
        (0.003, "core-0", "agg-c0-0"),
        (0.006, "core-0", "agg-c0-0", "up"),
    ],
    collective={
        "algorithm": "ring",
        "ranks": 4,
        "chunk_bytes": 20_000,
        "rounds": 2,
        "compute_s": 3e-4,
        "compute_jitter": 0.5,
    },
)


def _full(metrics=None) -> str:
    config = ExperimentConfig(**SCENARIO)
    return run_full_simulation(config, metrics=metrics).result.determinism_signature()


def test_full_scenario_signature_stable_across_reruns_and_metrics():
    baseline = _full()
    assert baseline == _full()
    assert baseline == _full(metrics=MetricsRegistry(enabled=True))
    # The scenario actually exercised what it claims to.
    config = ExperimentConfig(**SCENARIO)
    result = run_full_simulation(config).result
    assert len(result.failure_events) == 2
    assert result.collective["rounds_completed"] == 2


def test_failure_schedule_perturbs_outcomes():
    """The signature is sensitive: under congestion, dropping the
    failure schedule changes the flow outcomes, not just the recorded
    failure events (rerouted flows shift queueing onto the surviving
    core links)."""
    congested = dict(SCENARIO, load=0.7, collective=None)
    no_failures = dict(congested, failures=[])
    a = run_full_simulation(ExperimentConfig(**congested)).result
    b = run_full_simulation(ExperimentConfig(**no_failures)).result
    assert a.failure_events and not b.failure_events
    assert a.determinism_signature() != b.determinism_signature()
    assert a.fcts != b.fcts


def test_hybrid_scenario_signature_stable_with_tracing(trained_bundle):
    def run(metrics=None, tracer=None) -> str:
        config = ExperimentConfig(**SCENARIO)
        result, _ = run_hybrid_simulation(
            config, trained_bundle, metrics=metrics, tracer=tracer
        )
        return result.determinism_signature()

    baseline = run()
    assert baseline == run()
    assert baseline == run(metrics=MetricsRegistry(enabled=True))
    assert baseline == run(tracer=FlightRecorder(seed=31))
