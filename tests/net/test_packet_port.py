"""Tests for the packet model and the output-port queue/link."""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.net.packet import DEFAULT_MSS, HEADER_BYTES, Packet, TcpFlags
from repro.net.port import Port


class _Sink:
    """Records deliveries."""

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.received: list[tuple[Packet, str, float]] = []
        self.sim: Simulator | None = None

    def receive(self, packet: Packet, from_node: str) -> None:
        assert self.sim is not None
        self.received.append((packet, from_node, self.sim.now))


def _packet(payload: int = DEFAULT_MSS, **kwargs) -> Packet:
    defaults = dict(src="a", dst="b", src_port=1, dst_port=2, payload_bytes=payload)
    defaults.update(kwargs)
    return Packet(**defaults)


class TestPacket:
    def test_size_includes_headers(self):
        packet = _packet(payload=100)
        assert packet.size_bytes == 100 + HEADER_BYTES

    def test_flow_hash_direction_sensitive(self):
        forward = _packet()
        reverse = _packet(src="b", dst="a", src_port=2, dst_port=1)
        assert forward.flow_hash() != reverse.flow_hash()

    def test_flow_hash_stable_within_flow(self):
        p1 = _packet(seq=0)
        p2 = _packet(seq=5000)
        assert p1.flow_hash() == p2.flow_hash()

    def test_ack_only_detection(self):
        ack = _packet(payload=0, flags=TcpFlags.ACK)
        data = _packet(payload=10)
        assert ack.is_ack_only() and not data.is_ack_only()

    def test_packet_ids_unique(self):
        ids = {_packet().packet_id for _ in range(100)}
        assert len(ids) == 100


class TestPortTiming:
    def test_serialization_plus_propagation(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        port = Port(sim, "src", sink, rate_bps=1e9, delay_s=1e-5)
        packet = _packet(payload=1460 - HEADER_BYTES)  # 1460B on the wire
        port.enqueue(packet)
        sim.run()
        expected = 1460 * 8 / 1e9 + 1e-5
        assert sink.received[0][2] == pytest.approx(expected)
        assert sink.received[0][1] == "src"

    def test_fifo_order_and_back_to_back(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        port = Port(sim, "src", sink, rate_bps=1e9, delay_s=0.0)
        first = _packet(payload=960)  # 1000B
        second = _packet(payload=960)
        port.enqueue(first)
        port.enqueue(second)
        sim.run()
        t1, t2 = sink.received[0][2], sink.received[1][2]
        assert sink.received[0][0] is first
        assert t2 - t1 == pytest.approx(1000 * 8 / 1e9)

    def test_queue_drops_when_full(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        dropped = []
        port = Port(
            sim, "src", sink, rate_bps=1e9, delay_s=0.0,
            queue_capacity_bytes=3000, on_drop=dropped.append,
        )
        packets = [_packet(payload=1460) for _ in range(5)]
        for p in packets:
            port.enqueue(p)
        # One in flight + two queued (3000B), remaining two dropped.
        sim.run()
        assert len(sink.received) == 3
        assert len(dropped) == 2
        assert port.stats.dropped == 2
        assert port.stats.transmitted == 3

    def test_queued_bytes_tracking(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        port = Port(sim, "src", sink, rate_bps=1e6, delay_s=0.0)
        port.enqueue(_packet(payload=460))  # starts transmitting
        assert port.queued_bytes == 0
        port.enqueue(_packet(payload=460))
        assert port.queued_bytes == 500
        assert port.queue_length == 1
        sim.run()
        assert port.queued_bytes == 0

    def test_ecn_marking_over_threshold(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        port = Port(
            sim, "src", sink, rate_bps=1e6, delay_s=0.0,
            queue_capacity_bytes=100_000, ecn_threshold_bytes=1000,
        )
        port.enqueue(_packet(payload=1460, ecn_capable=True))  # in flight
        port.enqueue(_packet(payload=1460, ecn_capable=True))  # queued, below
        marked = _packet(payload=1460, ecn_capable=True)
        port.enqueue(marked)  # queue now >= 1000B: marked
        sim.run()
        assert marked.ecn_marked
        assert port.stats.marked == 1

    def test_no_ecn_mark_without_capability(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        port = Port(
            sim, "src", sink, rate_bps=1e6, delay_s=0.0, ecn_threshold_bytes=0
        )
        port.enqueue(_packet(payload=100))
        packet = _packet(payload=100, ecn_capable=False)
        port.enqueue(packet)
        sim.run()
        assert not packet.ecn_marked

    def test_on_deliver_hook(self):
        sim = Simulator()
        sink = _Sink()
        sink.sim = sim
        port = Port(sim, "src", sink, rate_bps=1e9, delay_s=1e-6)
        seen = []
        port.on_deliver = lambda p, t: seen.append(t)
        port.enqueue(_packet())
        sim.run()
        assert len(seen) == 1
        assert seen[0] == sink.received[0][2]

    def test_invalid_construction(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Port(sim, "x", _Sink(), rate_bps=0, delay_s=0)
        with pytest.raises(ValueError):
            Port(sim, "x", _Sink(), rate_bps=1e9, delay_s=-1)
