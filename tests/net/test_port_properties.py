"""Property-based tests of the output port."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.net.port import Port


class _Sink:
    def __init__(self) -> None:
        self.name = "sink"
        self.received: list[Packet] = []

    def receive(self, packet: Packet, from_node: str) -> None:
        self.received.append(packet)


def _packet(i: int, payload: int) -> Packet:
    return Packet(src="a", dst="b", src_port=i, dst_port=80, payload_bytes=payload)


@given(
    payloads=st.lists(st.integers(min_value=0, max_value=1460), min_size=1, max_size=60),
    capacity=st.integers(min_value=0, max_value=20_000),
    rate=st.sampled_from([1e6, 1e9, 10e9]),
)
@settings(max_examples=100, deadline=None)
def test_conservation_and_fifo(payloads, capacity, rate):
    """enqueued == transmitted + dropped, delivered in FIFO order,
    byte accounting consistent — for arbitrary burst patterns."""
    sim = Simulator()
    sink = _Sink()
    port = Port(sim, "a", sink, rate_bps=rate, delay_s=1e-6,
                queue_capacity_bytes=capacity)
    packets = [_packet(i, p) for i, p in enumerate(payloads)]
    for packet in packets:
        port.enqueue(packet)
    sim.run()
    stats = port.stats
    assert stats.enqueued == len(packets)
    assert stats.transmitted + stats.dropped == stats.enqueued
    assert len(sink.received) == stats.transmitted
    # FIFO: delivered src_ports are a subsequence in increasing order.
    delivered = [p.src_port for p in sink.received]
    assert delivered == sorted(delivered)
    assert stats.bytes_transmitted == sum(p.size_bytes for p in sink.received)
    assert port.queued_bytes == 0


@given(
    payloads=st.lists(st.integers(min_value=0, max_value=1460), min_size=2, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_no_drops_with_infinite_queue(payloads):
    sim = Simulator()
    sink = _Sink()
    port = Port(sim, "a", sink, rate_bps=1e9, delay_s=0.0,
                queue_capacity_bytes=1 << 40)
    for i, payload in enumerate(payloads):
        port.enqueue(_packet(i, payload))
    sim.run()
    assert port.stats.dropped == 0
    assert len(sink.received) == len(payloads)


@given(
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=1e-3, allow_nan=False), min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=50, deadline=None)
def test_delivery_times_respect_serialization(gaps):
    """No packet is delivered earlier than enqueue + serialization +
    propagation, for arbitrary staggered arrivals."""
    sim = Simulator()
    sink: list[tuple[Packet, float]] = []

    class TimedSink:
        name = "sink"

        def receive(self, packet: Packet, from_node: str) -> None:
            sink.append((packet, sim.now))

    port = Port(sim, "a", TimedSink(), rate_bps=1e9, delay_s=1e-5,
                queue_capacity_bytes=1 << 40)
    enqueue_times = {}
    t = 0.0
    for i, gap in enumerate(gaps):
        t += gap
        packet = _packet(i, 1000)
        enqueue_times[packet.packet_id] = t
        sim.schedule_at(t, lambda p=packet: port.enqueue(p))
    sim.run()
    for packet, arrival in sink:
        floor = enqueue_times[packet.packet_id] + packet.size_bytes * 8 / 1e9 + 1e-5
        assert arrival >= floor - 1e-15
