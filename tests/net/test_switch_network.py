"""Tests for switch forwarding and network assembly."""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.packet import Packet
from repro.topology.clos import ClosParams, build_clos, server_name


def _packet(src: str, dst: str, payload: int = 1000) -> Packet:
    return Packet(src=src, dst=dst, src_port=1111, dst_port=80, payload_bytes=payload)


class TestNetworkAssembly:
    def test_entities_created(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        assert len(net.hosts) == 16
        assert len(net.switches) == 10  # 4 tor + 4 agg + 2 core
        # One port per link direction.
        assert len(net.ports()) == 2 * small_clos.link_count

    def test_host_nics_attached(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        for host in net.hosts.values():
            assert host.nic is not None

    def test_rtt_monitors_per_cluster(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        assert set(net.rtt_monitors) == {0, 1}
        assert net.host(server_name(0, 0, 0)).rtt_monitor is net.rtt_monitor(0)

    def test_excluded_without_override_rejected(self, small_clos):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, small_clos, excluded_nodes={"tor-c0-0"})

    def test_excluded_with_override(self, small_clos):
        sim = Simulator()

        class Blackhole:
            name = "blackhole"
            received = []

            def receive(self, packet, from_node):
                self.received.append((packet, from_node))

        hole = Blackhole()
        overrides = {"tor-c0-0": hole}
        net = Network(
            sim, small_clos, excluded_nodes={"tor-c0-0"}, receiver_overrides=overrides
        )
        assert "tor-c0-0" not in net.switches
        # The server under that ToR still exists and its NIC points at
        # the override.
        host = net.host(server_name(0, 0, 0))
        assert host.nic.peer is hole


class TestForwarding:
    def test_packet_crosses_fabric(self, small_clos):
        """Inject a raw packet at a host NIC; it must reach the
        destination host over 6 hops with plausible latency."""
        sim = Simulator()
        net = Network(sim, small_clos)
        src = server_name(0, 0, 0)
        dst = server_name(1, 1, 3)
        packet = _packet(src, dst)
        net.host(src).transmit(packet)
        sim.run()
        assert net.host(dst).packets_received == 1
        # 6 hops x (serialization + 1us propagation).
        serialization = 1040 * 8 / 10e9
        assert sim.now == pytest.approx(6 * (serialization + 1e-6))

    def test_same_rack_two_hops(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        src = server_name(0, 0, 0)
        dst = server_name(0, 0, 1)
        net.host(src).transmit(_packet(src, dst))
        sim.run()
        assert net.host(dst).packets_received == 1
        serialization = 1040 * 8 / 10e9
        assert sim.now == pytest.approx(2 * (serialization + 1e-6))

    def test_flow_packets_take_one_path(self, small_clos):
        """All packets of one flow traverse the same switches (ECMP)."""
        sim = Simulator()
        net = Network(sim, small_clos)
        src = server_name(0, 0, 0)
        dst = server_name(1, 0, 0)
        seen_paths = set()
        for switch in net.switches.values():
            switch.on_forward = (
                lambda sw, p, nh: seen_paths.add((sw.name, nh))
            )
        for i in range(5):
            net.host(src).transmit(_packet(src, dst))
        sim.run()
        # 5 identical-flow packets, but the per-hop (switch, next) pairs
        # form a single path: 5 distinct forwarding pairs, not more.
        assert len(seen_paths) == 5

    def test_unmatched_packets_counted_not_crashing(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        src = server_name(0, 0, 0)
        dst = server_name(0, 0, 1)
        net.host(src).transmit(_packet(src, dst))
        sim.run()
        assert net.host(dst).unmatched_packets == 1  # no receiver registered

    def test_drop_counter_aggregates(self, small_clos):
        sim = Simulator()
        config = NetworkConfig(queue_capacity_bytes=1040)  # tiny queues
        net = Network(sim, small_clos, config=config)
        src = server_name(0, 0, 0)
        dst = server_name(0, 0, 1)
        for _ in range(10):
            net.host(src).transmit(_packet(src, dst))
        sim.run()
        assert net.total_drops > 0
        assert net.host(dst).packets_received < 10
