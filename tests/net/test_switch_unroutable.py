"""Structured unroutable-packet errors.

A partitioned topology must surface ``(switch, dst, policy)`` context —
not a bare KeyError/RuntimeError — and the invariant checker's network
watch must count the stranded packet as a routability violation before
the error propagates.
"""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.switch import UnroutablePacketError
from repro.topology.clos import ClosParams, build_clos
from repro.topology.routing import EcmpRouting
from repro.validate.invariants import InvariantChecker


@pytest.fixture
def partitioned_network():
    """A 2-cluster Clos whose tor-c0-0 has both uplinks cut."""
    topology = build_clos(ClosParams(clusters=2))
    sim = Simulator(seed=3)
    routing = EcmpRouting(topology)
    network = Network(sim, topology, routing=routing)
    routing.set_link_state("tor-c0-0", "agg-c0-0", up=False)
    routing.set_link_state("tor-c0-0", "agg-c0-1", up=False)
    return sim, network


def _cross_rack_packet() -> Packet:
    return Packet(
        src="server-c0-t0-s0",
        dst="server-c1-t0-s0",
        src_port=10_001,
        dst_port=80,
        payload_bytes=1460,
    )


def test_unroutable_packet_raises_structured_error(partitioned_network):
    sim, network = partitioned_network
    switch = network.switches["tor-c0-0"]
    with pytest.raises(UnroutablePacketError) as excinfo:
        switch.receive(_cross_rack_packet(), from_node="server-c0-t0-s0")
    error = excinfo.value
    assert error.switch == "tor-c0-0"
    assert error.dst == "server-c1-t0-s0"
    assert error.policy == "ecmp"
    assert error.time == sim.now
    assert ("agg-c0-0", "tor-c0-0") in [tuple(p) for p in error.failed_links]
    details = error.details()
    assert details["switch"] == "tor-c0-0"
    assert details["policy"] == "ecmp"
    assert details["failed_links"], details
    # The message reads like an explanation, not a bare traceback.
    assert "cannot route" in str(error)


def test_watch_network_counts_routability_violation(partitioned_network):
    sim, network = partitioned_network
    checker = InvariantChecker()
    checker.watch_network(network)
    switch = network.switches["tor-c0-0"]
    with pytest.raises(UnroutablePacketError):
        switch.receive(_cross_rack_packet(), from_node="server-c0-t0-s0")
    summary = checker.summary()
    assert summary["counts"]["routability"] == 1
    assert summary["total"] == 1
    (violation,) = summary["violations"]
    assert violation["invariant"] == "routability"
    assert "tor-c0-0" in violation["detail"]


def test_intact_topology_routes_without_violations():
    topology = build_clos(ClosParams(clusters=2))
    sim = Simulator(seed=3)
    network = Network(sim, topology)
    checker = InvariantChecker()
    checker.watch_network(network)
    switch = network.switches["tor-c0-0"]
    switch.receive(_cross_rack_packet(), from_node="server-c0-t0-s0")
    assert switch.packets_forwarded == 1
    assert checker.total == 0
