"""Tests for raw packet/event trace capture."""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tracing import KIND_DELIVER, KIND_DROP, PacketTracer
from repro.topology.clos import server_name


def _run_with_tracer(small_clos, nodes=None, queue_capacity=150_000, flows=1):
    sim = Simulator(seed=77)
    net = Network(
        sim, small_clos, config=NetworkConfig(queue_capacity_bytes=queue_capacity)
    )
    tracer = PacketTracer(net, nodes=nodes)
    src = net.host(server_name(0, 0, 0))
    dst = net.host(server_name(1, 0, 0))
    for _ in range(flows):
        src.open_flow(dst, 50_000).start()
    sim.run(until=5.0)
    return tracer, net


class TestPacketTracer:
    def test_records_every_hop(self, small_clos):
        tracer, _ = _run_with_tracer(small_clos)
        assert len(tracer) > 0
        # A cross-cluster data packet is delivered on 6 consecutive links.
        first_data = next(e for e in tracer.events if e.payload_bytes > 0)
        hops = [
            e for e in tracer.events
            if e.packet_id == first_data.packet_id and e.kind == KIND_DELIVER
        ]
        assert len(hops) == 6
        times = [h.time for h in hops]
        assert times == sorted(times)

    def test_node_filter(self, small_clos):
        tracer, _ = _run_with_tracer(small_clos, nodes=["tor-c0-0"])
        assert len(tracer) > 0
        assert all(e.link_from == "tor-c0-0" for e in tracer.events)

    def test_bad_filter_rejected(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        with pytest.raises(ValueError):
            PacketTracer(net, nodes=["no-such-node"])

    def test_drop_events_recorded_and_counted(self, small_clos):
        tracer, net = _run_with_tracer(small_clos, queue_capacity=3_000, flows=6)
        assert net.total_drops > 0  # chained accounting still works
        assert len(tracer.drops()) == net.total_drops
        assert all(e.kind == KIND_DROP for e in tracer.drops())

    def test_flow_filter_helper(self, small_clos):
        tracer, _ = _run_with_tracer(small_clos)
        data_events = tracer.flow_events(server_name(0, 0, 0), server_name(1, 0, 0))
        ack_events = tracer.flow_events(server_name(1, 0, 0), server_name(0, 0, 0))
        assert data_events and ack_events
        assert all(e.payload_bytes >= 0 for e in data_events)

    def test_csv_roundtrip(self, small_clos, tmp_path):
        tracer, _ = _run_with_tracer(small_clos)
        path = tmp_path / "trace.csv"
        count = tracer.write_csv(path)
        assert count == len(tracer)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count + 1  # header
        assert lines[0].startswith("time,kind,link_from,link_to")

    def test_rows_are_plain_dicts(self, small_clos):
        tracer, _ = _run_with_tracer(small_clos)
        row = tracer.rows()[0]
        assert isinstance(row, dict)
        assert set(row) >= {"time", "kind", "src", "dst", "seq", "packet_id"}
