"""Tests for activations and loss functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import relu, relu_grad, sigmoid, sigmoid_grad, tanh_grad
from repro.nn.losses import BCEWithLogitsLoss, JointDropLatencyLoss, MSELoss


finite_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_extreme_values_no_overflow(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    @given(finite_arrays)
    def test_range_and_monotonicity(self, x):
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))
        flat = np.sort(x.ravel())
        assert np.all(np.diff(sigmoid(flat)) >= -1e-15)

    def test_grad_matches_numeric(self):
        x = np.linspace(-3, 3, 13)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        analytic = sigmoid_grad(sigmoid(x))
        np.testing.assert_allclose(analytic, numeric, rtol=1e-6)


class TestTanhRelu:
    def test_tanh_grad_matches_numeric(self):
        x = np.linspace(-2, 2, 9)
        eps = 1e-6
        numeric = (np.tanh(x + eps) - np.tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(tanh_grad(np.tanh(x)), numeric, rtol=1e-6)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu_grad(x), [0.0, 0.0, 1.0])


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(2.5)

    def test_gradient_numeric(self):
        loss = MSELoss()
        pred = np.array([0.5, -1.0, 2.0])
        target = np.array([0.0, 0.0, 1.0])
        loss.forward(pred, target)
        grad = loss.backward()
        eps = 1e-6
        for i in range(3):
            plus, minus = pred.copy(), pred.copy()
            plus[i] += eps
            minus[i] -= eps
            numeric = (loss.forward(plus, target) - loss.forward(minus, target)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-5)

    def test_mask_excludes_elements(self):
        loss = MSELoss()
        pred = np.array([1.0, 100.0])
        target = np.array([0.0, 0.0])
        mask = np.array([1.0, 0.0])
        assert loss.forward(pred, target, mask=mask) == pytest.approx(1.0)
        grad = loss.backward()
        assert grad[1] == 0.0

    def test_all_masked_no_nan(self):
        loss = MSELoss()
        value = loss.forward(np.array([1.0]), np.array([0.0]), mask=np.array([0.0]))
        assert value == 0.0


class TestBCEWithLogits:
    def test_known_value(self):
        loss = BCEWithLogitsLoss()
        # logit 0 -> p=0.5 -> loss ln 2 regardless of label
        assert loss.forward(np.zeros(4), np.array([0, 1, 0, 1.0])) == pytest.approx(np.log(2))

    def test_extreme_logits_finite(self):
        loss = BCEWithLogitsLoss()
        value = loss.forward(np.array([1e4, -1e4]), np.array([1.0, 0.0]))
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_gradient_numeric(self):
        loss = BCEWithLogitsLoss()
        logits = np.array([0.3, -0.7, 1.5])
        target = np.array([1.0, 0.0, 1.0])
        loss.forward(logits, target)
        grad = loss.backward()
        eps = 1e-6
        for i in range(3):
            plus, minus = logits.copy(), logits.copy()
            plus[i] += eps
            minus[i] -= eps
            numeric = (loss.forward(plus, target) - loss.forward(minus, target)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-5)


class TestJointLoss:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            JointDropLatencyLoss(alpha=0.0)
        with pytest.raises(ValueError):
            JointDropLatencyLoss(alpha=1.5)

    def test_combination(self):
        joint = JointDropLatencyLoss(alpha=0.5)
        logits = np.zeros(2)
        latency = np.array([1.0, 1.0])
        drop_target = np.zeros(2)
        latency_target = np.zeros(2)
        parts = joint.forward(logits, latency, drop_target, latency_target)
        assert parts.drop == pytest.approx(np.log(2))
        assert parts.latency == pytest.approx(1.0)
        assert parts.total == pytest.approx(np.log(2) + 0.5)

    def test_dropped_packets_mask_latency(self):
        """Paper rule: 'if there is a packet drop then no latency error
        can be back-propagated.'"""
        joint = JointDropLatencyLoss(alpha=1.0)
        logits = np.zeros(2)
        latency = np.array([5.0, 999.0])  # second packet was dropped
        drop_target = np.array([0.0, 1.0])
        latency_target = np.zeros(2)
        parts = joint.forward(logits, latency, drop_target, latency_target)
        assert parts.latency == pytest.approx(25.0)  # only survivor counted
        _, grad_latency = joint.backward()
        assert grad_latency[1] == 0.0
        assert grad_latency[0] != 0.0
