"""Tests for the lane-batched inference engine (ISSUE 6 tentpole).

The contract: ``predict_batch`` over B distinct lanes is equivalent to
B *independent scalar engines* each taking one ``predict`` step — in
float64 bit-exactly (event-identity of batched hybrid runs rests on
this), in float32 within tolerance.  The memoization wrapper must be
outcome-identical to the unmemoized engine in exact mode.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.infer import compile_inference
from repro.nn.batch import MemoConfig, make_batched_engine

F32_TOLERANCE = 5e-3


def _make_model(cell, heads, input_size, hidden_size, num_layers, seed) -> MicroModel:
    config = MicroModelConfig(
        input_size=input_size,
        hidden_size=hidden_size,
        num_layers=num_layers,
        cell=cell,
        heads=heads,
        seed=seed,
    )
    model = MicroModel(config, np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    scale = 1.0 / np.sqrt(hidden_size)
    for parameter in model.parameters():
        parameter.value[...] = rng.normal(scale=scale, size=parameter.value.shape)
    return model


def _compiled(cell, heads, input_size, hidden_size, num_layers, seed, dtype):
    model = _make_model(cell, heads, input_size, hidden_size, num_layers, seed)
    return compile_inference(
        model.lstm, model.drop_head, model.latency_head, dtype=dtype
    )


def _run_pair(compiled, n_lanes, schedule, seed, memo=None):
    """Drive batched lanes and independent scalar engines through the
    same per-lane feature streams; returns (batched, scalar) outcome
    lists in schedule order.

    ``schedule`` is a list of rounds; each round is a list of distinct
    lane ids stepping together (ragged batches included).
    """
    batched = make_batched_engine(compiled, n_lanes, memo=memo)
    scalars = [compiled.engine() for _ in range(n_lanes)]
    rng = np.random.default_rng(seed + 7)
    got, want = [], []
    for rounds, rows in enumerate(schedule):
        feats = [rng.normal(size=compiled.input_size) for _ in rows]
        macros = [(rounds + row) % 4 for row in rows]
        got.extend(batched.predict_rows(feats, macros, rows))
        for x, m, row in zip(feats, macros, rows):
            want.append(scalars[row].predict(x, macro_index=m))
    return got, want


def _schedule(n_lanes, rounds, rng):
    """Random ragged schedule: each round steps a random subset of lanes."""
    out = []
    for _ in range(rounds):
        width = int(rng.integers(1, n_lanes + 1))
        rows = sorted(rng.choice(n_lanes, size=width, replace=False).tolist())
        out.append(rows)
    return out


# ----------------------------------------------------------------------
# Property: batched == N independent scalar engines
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    cell=st.sampled_from(["lstm", "gru"]),
    heads=st.sampled_from(["shared", "per_macro"]),
    input_size=st.integers(min_value=1, max_value=6),
    hidden_size=st.integers(min_value=1, max_value=8),
    num_layers=st.integers(min_value=1, max_value=2),
    n_lanes=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_batched_float64_bit_identical_property(
    cell, heads, input_size, hidden_size, num_layers, n_lanes, seed
):
    compiled = _compiled(
        cell, heads, input_size, hidden_size, num_layers, seed, np.float64
    )
    schedule = _schedule(n_lanes, rounds=8, rng=np.random.default_rng(seed + 13))
    got, want = _run_pair(compiled, n_lanes, schedule, seed)
    assert got == want  # bit-exact, not approx


@settings(max_examples=10, deadline=None)
@given(
    cell=st.sampled_from(["lstm", "gru"]),
    heads=st.sampled_from(["shared", "per_macro"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_batched_float32_within_tolerance_property(cell, heads, seed):
    compiled = _compiled(cell, heads, 6, 16, 2, seed, np.float32)
    schedule = _schedule(4, rounds=8, rng=np.random.default_rng(seed + 13))
    got, want = _run_pair(compiled, 4, schedule, seed)
    for (drop_b, lat_b), (drop_s, lat_s) in zip(got, want):
        assert drop_b == pytest.approx(drop_s, abs=F32_TOLERANCE)
        assert lat_b == pytest.approx(lat_s, abs=F32_TOLERANCE)


@pytest.mark.parametrize("cell", ["lstm", "gru"])
@pytest.mark.parametrize("heads", ["shared", "per_macro"])
def test_batched_float64_long_stream_full_and_ragged(cell, heads):
    """The paper-sized architecture over a long mixed schedule: full
    batches (the in-place fast path) interleaved with ragged ones
    (gather/scatter) and width-1 rounds (the fallback)."""
    compiled = _compiled(cell, heads, 21, 64, 2, seed=3, dtype=np.float64)
    rng = np.random.default_rng(29)
    schedule = [[0, 1, 2, 3]] * 10 + _schedule(4, 30, rng) + [[2]] * 5 + [[0, 1, 2, 3]] * 10
    got, want = _run_pair(compiled, 4, schedule, seed=3)
    assert got == want


def test_predict_one_is_width_one_batch():
    compiled = _compiled("lstm", "shared", 8, 16, 1, seed=11, dtype=np.float64)
    a = make_batched_engine(compiled, 3)
    b = make_batched_engine(compiled, 3)
    rng = np.random.default_rng(5)
    for step in range(20):
        x = rng.normal(size=8)
        row = step % 3
        assert a.predict_one(x, step % 4, row) == b.predict_rows(
            [x], [step % 4], [row]
        )[0]


def test_reset_restores_fresh_lanes():
    compiled = _compiled("gru", "per_macro", 5, 12, 2, seed=19, dtype=np.float64)
    engine = make_batched_engine(compiled, 2, memo=MemoConfig())
    rng = np.random.default_rng(6)
    stream = [rng.normal(size=5) for _ in range(12)]
    baseline = [engine.predict_rows([x], [i % 4], [i % 2]) for i, x in enumerate(stream)]
    engine.reset()
    assert engine.steps == 0
    again = [engine.predict_rows([x], [i % 4], [i % 2]) for i, x in enumerate(stream)]
    assert again == baseline


# ----------------------------------------------------------------------
# Memoization
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    cell=st.sampled_from(["lstm", "gru"]),
    heads=st.sampled_from(["shared", "per_macro"]),
    n_lanes=st.integers(min_value=1, max_value=4),
    period=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_exact_memo_is_outcome_identical_property(cell, heads, n_lanes, period, seed):
    """Exact-mode memoization must never change any outcome — under a
    periodic workload (the cache's target regime) hits are only taken
    when they are provably byte-identical to recomputation."""
    compiled = _compiled(cell, heads, 4, 8, 1, seed, np.float64)
    rng = np.random.default_rng(seed + 13)
    periodic = [rng.normal(size=4) for _ in range(period)]
    plain = make_batched_engine(compiled, n_lanes)
    memoized = make_batched_engine(compiled, n_lanes, memo=MemoConfig())
    rows = list(range(n_lanes))
    for step in range(30):
        feats = [periodic[step % period] for _ in rows]
        macros = [step % 4] * n_lanes
        assert memoized.predict_rows(feats, macros, rows) == plain.predict_rows(
            feats, macros, rows
        )


def test_approximate_memo_hits_and_fast_forwards():
    """exact=False under an exactly periodic feature stream must start
    hitting once the quantized state revisits a seen key, and a hit
    must not corrupt the lane (the next miss restores real state)."""
    compiled = _compiled("lstm", "shared", 4, 8, 1, seed=41, dtype=np.float64)
    engine = make_batched_engine(
        compiled, 1, memo=MemoConfig(exact=False, state_decimals=2)
    )
    rng = np.random.default_rng(8)
    periodic = [rng.normal(size=4) for _ in range(3)]
    for step in range(4000):
        engine.predict_rows([periodic[step % 3]], [0], [0])
    assert engine.memo_hits > 0
    # Break the period: the miss path must restore concrete state and
    # keep producing finite, sane outcomes.
    drop, latency = engine.predict_rows([rng.normal(size=4)], [1], [0])[0]
    assert 0.0 <= drop <= 1.0
    assert np.isfinite(latency)


def test_memo_capacity_is_bounded():
    compiled = _compiled("gru", "shared", 4, 8, 1, seed=43, dtype=np.float64)
    engine = make_batched_engine(compiled, 1, memo=MemoConfig(max_entries=16))
    rng = np.random.default_rng(9)
    for _ in range(200):  # every step is a distinct key -> all misses
        engine.predict_rows([rng.normal(size=4)], [0], [0])
    assert len(engine._memo) <= 16
    assert engine.memo_misses == 200


def test_rejects_bad_construction():
    compiled = _compiled("lstm", "shared", 4, 8, 1, seed=47, dtype=np.float64)
    with pytest.raises(ValueError):
        make_batched_engine(compiled, 0)
    with pytest.raises(ValueError):
        MemoConfig(max_entries=0)
