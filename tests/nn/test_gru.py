"""Gradient checks and behaviour tests for the GRU variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.gradcheck import check_module_gradients, max_relative_error, numerical_gradient
from repro.nn.gru import GRU, GRUCell

TOLERANCE = 1e-5


def test_gru_cell_single_step_gradients(rng):
    cell = GRUCell(3, 4, rng)
    x = rng.standard_normal((2, 3))
    h0 = rng.standard_normal((2, 4)) * 0.1
    target = rng.standard_normal((2, 4))

    def loss_fn() -> float:
        h, _ = cell.step(x, h0)
        return float(((h - target) ** 2).sum())

    def backward_fn() -> None:
        h, cache = cell.step(x, h0)
        cell.backward_step(2.0 * (h - target), cache)

    # eps=1e-4: smaller steps are rounding-dominated on the cell's
    # near-zero recurrent-weight gradients (verified: the error falls
    # from ~2e-4 at eps=1e-5 to ~4e-6 at eps=1e-4).
    worst = check_module_gradients(cell, loss_fn, backward_fn, eps=1e-4)
    assert worst < TOLERANCE


@pytest.mark.parametrize("num_layers", [1, 2])
def test_gru_bptt_gradients(rng, num_layers):
    gru = GRU(input_size=3, hidden_size=4, num_layers=num_layers, rng=rng)
    x = rng.standard_normal((5, 2, 3))
    target = rng.standard_normal((5, 2, 4))

    def loss_fn() -> float:
        out, _ = gru.forward(x)
        return float(((out - target) ** 2).sum())

    def backward_fn() -> None:
        out, _ = gru.forward(x)
        gru.backward(2.0 * (out - target))

    worst = check_module_gradients(gru, loss_fn, backward_fn, eps=1e-5)
    assert worst < TOLERANCE


def test_gru_input_gradients(rng):
    gru = GRU(input_size=2, hidden_size=3, num_layers=2, rng=rng)
    x = rng.standard_normal((4, 2, 2))
    target = rng.standard_normal((4, 2, 3))
    out, _ = gru.forward(x)
    grad_x = gru.backward(2.0 * (out - target))

    def loss_fn() -> float:
        out, _ = gru.forward(x)
        return float(((out - target) ** 2).sum())

    numeric = numerical_gradient(loss_fn, x, eps=1e-5)
    assert max_relative_error(grad_x, numeric) < TOLERANCE


def test_gru_step_matches_forward(rng):
    gru = GRU(input_size=3, hidden_size=4, num_layers=2, rng=rng)
    x = rng.standard_normal((6, 1, 3))
    out_seq, final = gru.forward(x)
    state = gru.initial_state(1)
    for t in range(6):
        h, state = gru.step(x[t], state)
    np.testing.assert_allclose(h, out_seq[-1], rtol=1e-12)
    for layer in range(2):
        np.testing.assert_allclose(state.h[layer], final.h[layer], rtol=1e-12)


def test_gru_fewer_parameters_than_lstm(rng):
    from repro.nn.lstm import LSTM

    gru = GRU(8, 16, 2, rng)
    lstm = LSTM(8, 16, 2, np.random.default_rng(0))
    assert gru.parameter_count() == lstm.parameter_count() * 3 // 4


def test_micro_model_with_gru_trunk(rng):
    config = MicroModelConfig(input_size=4, hidden_size=8, num_layers=1, cell="gru")
    model = MicroModel(config, rng)
    state = model.initial_state()
    p, latency, state = model.predict_step(rng.standard_normal(4), state)
    assert 0.0 <= p <= 1.0 and np.isfinite(latency)
    # Sequence forward agrees with stepping (shared heads).
    xs = rng.standard_normal((3, 1, 4))
    drop_seq, lat_seq = model.forward(xs)
    assert drop_seq.shape == (3, 1)


def test_micro_model_invalid_cell():
    with pytest.raises(ValueError):
        MicroModelConfig(cell="transformer")


def test_gru_bundle_roundtrip(tmp_path, rng):
    """A GRU-trunk bundle saves and loads with the cell type intact."""
    from repro.core.training import DirectionModel, TrainedClusterModel
    from repro.core.features import Direction
    from repro.core.macro import MacroCalibration
    from repro.nn.data import Standardizer

    config = MicroModelConfig(input_size=21, hidden_size=8, num_layers=1, cell="gru")
    model = MicroModel(config, rng)
    standardizer = Standardizer().fit(rng.standard_normal((10, 21)))
    bundle = TrainedClusterModel(
        config=config,
        calibration=MacroCalibration(latency_low_s=1e-4, drop_rate_high=0.01),
        directions={
            Direction.INGRESS: DirectionModel(
                model=model, feature_standardizer=standardizer,
                latency_mean=-9.0, latency_std=1.0,
            )
        },
    )
    bundle.save(tmp_path / "gru_bundle")
    loaded = TrainedClusterModel.load(tmp_path / "gru_bundle")
    assert loaded.config.cell == "gru"
    from repro.nn.gru import GRU as GruType

    assert isinstance(loaded.directions[Direction.INGRESS].model.lstm, GruType)
