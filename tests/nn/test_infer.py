"""Tests for the fused inference engine against the reference oracle.

The contract (ISSUE 1): in float64 the fused engine's outputs match
``MicroModel.predict_step`` to <= 1e-9 — for LSTM and GRU trunks,
shared and ``per_macro`` heads, with and without a folded feature
standardizer — while allocating nothing per packet in steady state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.data import Standardizer
from repro.nn.infer import CompiledRecurrentModel, compile_inference

TOLERANCE = 1e-9


def _make_model(
    cell: str,
    heads: str,
    input_size: int,
    hidden_size: int,
    num_layers: int,
    seed: int,
    weight_scale: float = 0.4,
) -> MicroModel:
    config = MicroModelConfig(
        input_size=input_size,
        hidden_size=hidden_size,
        num_layers=num_layers,
        cell=cell,
        heads=heads,
        seed=seed,
    )
    model = MicroModel(config, np.random.default_rng(seed))
    rng = np.random.default_rng(seed + 1)
    for parameter in model.parameters():
        parameter.value[...] = rng.normal(scale=weight_scale, size=parameter.value.shape)
    return model


def _make_standardizer(input_size: int, seed: int) -> Standardizer:
    rng = np.random.default_rng(seed + 2)
    standardizer = Standardizer()
    standardizer.mean = rng.normal(size=input_size)
    standardizer.std = np.abs(rng.normal(size=input_size)) + 0.5
    return standardizer


def _compare(
    model: MicroModel,
    standardizer: Standardizer | None,
    steps: int,
    seed: int,
    dtype=np.float64,
) -> float:
    """Max |fused - reference| over a feature stream."""
    mean = standardizer.mean if standardizer is not None else None
    std = standardizer.std if standardizer is not None else None
    compiled = compile_inference(
        model.lstm,
        model.drop_head,
        model.latency_head,
        feature_mean=mean,
        feature_std=std,
        dtype=dtype,
    )
    engine = compiled.engine()
    state = model.initial_state()
    rng = np.random.default_rng(seed + 3)
    worst = 0.0
    for i in range(steps):
        raw = rng.normal(size=model.config.input_size)
        normalized = standardizer.transform(raw) if standardizer is not None else raw
        macro_index = i % 4
        drop_ref, latency_ref, state = model.predict_step(
            normalized, state, macro_index=macro_index
        )
        drop_fused, latency_fused = engine.predict(raw, macro_index=macro_index)
        worst = max(worst, abs(drop_ref - drop_fused), abs(latency_ref - latency_fused))
    return worst


# ----------------------------------------------------------------------
# Property tests: fused == reference for every architecture variant
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    cell=st.sampled_from(["lstm", "gru"]),
    heads=st.sampled_from(["shared", "per_macro"]),
    input_size=st.integers(min_value=1, max_value=6),
    hidden_size=st.integers(min_value=1, max_value=8),
    num_layers=st.integers(min_value=1, max_value=2),
    fold_standardizer=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fused_matches_reference_property(
    cell, heads, input_size, hidden_size, num_layers, fold_standardizer, seed
):
    model = _make_model(cell, heads, input_size, hidden_size, num_layers, seed)
    standardizer = _make_standardizer(input_size, seed) if fold_standardizer else None
    assert _compare(model, standardizer, steps=12, seed=seed) <= TOLERANCE


@pytest.mark.parametrize("cell", ["lstm", "gru"])
@pytest.mark.parametrize("heads", ["shared", "per_macro"])
def test_fused_matches_reference_default_architecture(cell, heads):
    """The paper's 2-layer/128-hidden configuration, long stream.

    Weights are scaled ~1/sqrt(H) (spectral radius ~1, like any sane
    initializer or trained model).  Larger random recurrent weights
    make the *dynamics themselves* chaotic, where both paths diverge
    from each other through legitimate last-bit rounding — that is a
    property of the weights, not an engine defect.
    """
    model = _make_model(
        cell, heads, input_size=21, hidden_size=128, num_layers=2, seed=9,
        weight_scale=1.0 / np.sqrt(128),
    )
    standardizer = _make_standardizer(21, seed=9)
    assert _compare(model, standardizer, steps=300, seed=9) <= TOLERANCE


def test_fused_matches_reference_saturated_gates():
    """Large weights push pre-activations into the +-60 clip; the
    compiled negation/permutation must clip identically."""
    model = _make_model(
        "lstm", "shared", input_size=4, hidden_size=8, num_layers=2, seed=5,
        weight_scale=30.0,
    )
    assert _compare(model, None, steps=50, seed=5) <= TOLERANCE


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def _default_compiled(dtype=np.float64) -> tuple[MicroModel, CompiledRecurrentModel]:
    model = _make_model("lstm", "shared", 21, 32, 2, seed=17)
    compiled = compile_inference(
        model.lstm, model.drop_head, model.latency_head, dtype=dtype
    )
    return model, compiled


def test_float32_mode_tracks_float64():
    model, compiled64 = _default_compiled(np.float64)
    compiled32 = compile_inference(
        model.lstm, model.drop_head, model.latency_head, dtype=np.float32
    )
    e64, e32 = compiled64.engine(), compiled32.engine()
    rng = np.random.default_rng(0)
    for _ in range(100):
        raw = rng.normal(size=21)
        drop64, lat64 = e64.predict(raw)
        drop32, lat32 = e32.predict(raw)
        assert drop32 == pytest.approx(drop64, abs=1e-3)
        assert lat32 == pytest.approx(lat64, abs=1e-3)


def test_engines_are_independent_and_resettable():
    _, compiled = _default_compiled()
    rng = np.random.default_rng(1)
    stream = rng.normal(size=(20, 21))

    first = compiled.engine()
    baseline = [first.predict(x) for x in stream]

    # A second engine from the same compiled weights is unaffected by
    # the first's accumulated state.
    second = compiled.engine()
    assert [second.predict(x) for x in stream] == baseline

    # reset() restores the fresh-stream behaviour exactly.
    assert first.steps == 20
    first.reset()
    assert first.steps == 0
    assert [first.predict(x) for x in stream] == baseline


def test_compiled_weights_are_frozen_and_originals_untouched():
    model, compiled = _default_compiled()
    snapshots = [p.value.copy() for p in model.parameters()]
    for layer in compiled.layers:
        assert not layer.weight.flags.writeable
        assert not layer.bias.flags.writeable
        with pytest.raises(ValueError):
            layer.weight[0, 0] = 1.0
    assert not compiled.head_weight.flags.writeable
    engine = compiled.engine()
    rng = np.random.default_rng(2)
    for _ in range(10):
        engine.predict(rng.normal(size=21))
    for parameter, snapshot in zip(model.parameters(), snapshots):
        np.testing.assert_array_equal(parameter.value, snapshot)


def test_per_macro_head_routing():
    """Different macro indices must select different compiled heads."""
    model = _make_model("lstm", "per_macro", 6, 8, 1, seed=23)
    compiled = compile_inference(
        model.lstm, model.drop_head, model.latency_head, dtype=np.float64
    )
    rng = np.random.default_rng(3)
    raw = rng.normal(size=6)
    outputs = set()
    for macro_index in range(4):
        engine = compiled.engine()
        outputs.add(engine.predict(raw, macro_index=macro_index))
    assert len(outputs) == 4


def test_compile_rejects_bad_dtype_and_mismatched_heads():
    model, _ = _default_compiled()
    with pytest.raises(ValueError):
        compile_inference(
            model.lstm, model.drop_head, model.latency_head, dtype=np.int32
        )
    per_macro = _make_model("lstm", "per_macro", 21, 32, 2, seed=3)
    with pytest.raises(TypeError):
        compile_inference(model.lstm, model.drop_head, per_macro.latency_head)


def test_trained_bundle_compiles_and_caches(trained_bundle):
    """TrainedClusterModel.compiled() caches per dtype and the engines
    consume raw features (standardizer folded in).

    Runs against the session-scoped *actually trained* bundle — the
    same object the hybrid and obs tests share — so the cache and
    fold-in guarantees are checked on real weights, not synthetic ones.
    """
    bundle = trained_bundle
    assert bundle.compiled() is bundle.compiled("float64")
    assert bundle.compiled(np.float32) is not bundle.compiled()

    for direction, direction_model in bundle.directions.items():
        engine = bundle.compiled().engine(direction)
        model = direction_model.model
        standardizer = direction_model.feature_standardizer
        state = model.initial_state()
        rng = np.random.default_rng(33)
        for _ in range(25):
            raw = rng.normal(size=model.config.input_size)
            drop_ref, latency_ref, state = model.predict_step(
                standardizer.transform(raw), state
            )
            drop_fused, latency_fused = engine.predict(raw)
            assert abs(drop_fused - drop_ref) <= TOLERANCE
            assert abs(latency_fused - latency_ref) <= TOLERANCE
