"""Numerical gradient checks for Linear, LSTMCell, LSTM, and MicroModel.

These are the safety net for the hand-derived backward passes: every
analytic gradient is compared against central finite differences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.gradcheck import check_module_gradients, max_relative_error, numerical_gradient
from repro.nn.linear import Linear
from repro.nn.losses import JointDropLatencyLoss
from repro.nn.lstm import LSTM, LSTMCell

TOLERANCE = 1e-5


def test_linear_gradients(rng):
    layer = Linear(4, 3, rng)
    x = rng.standard_normal((5, 4))
    target = rng.standard_normal((5, 3))

    def loss_fn() -> float:
        return float(((layer.forward(x) - target) ** 2).sum())

    def backward_fn() -> None:
        out = layer.forward(x)
        layer.backward(2.0 * (out - target))

    worst = check_module_gradients(layer, loss_fn, backward_fn)
    assert worst < TOLERANCE


def test_linear_input_gradient(rng):
    layer = Linear(4, 2, rng)
    x = rng.standard_normal((3, 4))
    target = rng.standard_normal((3, 2))
    out = layer.forward(x)
    grad_x = layer.backward(2.0 * (out - target))

    def loss_fn() -> float:
        return float(((layer.forward(x) - target) ** 2).sum())

    numeric = numerical_gradient(loss_fn, x, eps=1e-5)
    assert max_relative_error(grad_x, numeric) < TOLERANCE


def test_lstm_cell_single_step_gradients(rng):
    cell = LSTMCell(3, 4, rng)
    x = rng.standard_normal((2, 3))
    h0 = rng.standard_normal((2, 4)) * 0.1
    c0 = rng.standard_normal((2, 4)) * 0.1
    target = rng.standard_normal((2, 4))

    def loss_fn() -> float:
        h, _, _ = cell.step(x, h0, c0)
        return float(((h - target) ** 2).sum())

    def backward_fn() -> None:
        h, _, cache = cell.step(x, h0, c0)
        cell.backward_step(2.0 * (h - target), np.zeros_like(h), cache)

    worst = check_module_gradients(cell, loss_fn, backward_fn, eps=1e-5)
    assert worst < TOLERANCE


@pytest.mark.parametrize("num_layers", [1, 2])
def test_lstm_bptt_gradients(rng, num_layers):
    """Full BPTT over a short window matches finite differences."""
    lstm = LSTM(input_size=3, hidden_size=4, num_layers=num_layers, rng=rng)
    x = rng.standard_normal((5, 2, 3))
    target = rng.standard_normal((5, 2, 4))

    def loss_fn() -> float:
        out, _ = lstm.forward(x)
        return float(((out - target) ** 2).sum())

    def backward_fn() -> None:
        out, _ = lstm.forward(x)
        lstm.backward(2.0 * (out - target))

    # eps=1e-5: at 1e-6 the check is rounding-dominated for BPTT-sized
    # losses (verified: error falls from ~4e-5 to ~6e-7 as eps grows).
    worst = check_module_gradients(lstm, loss_fn, backward_fn, eps=1e-5)
    assert worst < TOLERANCE


def test_lstm_input_gradients(rng):
    lstm = LSTM(input_size=2, hidden_size=3, num_layers=2, rng=rng)
    x = rng.standard_normal((4, 2, 2))
    target = rng.standard_normal((4, 2, 3))
    out, _ = lstm.forward(x)
    grad_x = lstm.backward(2.0 * (out - target))

    def loss_fn() -> float:
        out, _ = lstm.forward(x)
        return float(((out - target) ** 2).sum())

    numeric = numerical_gradient(loss_fn, x, eps=1e-5)
    assert max_relative_error(grad_x, numeric) < TOLERANCE


def test_micro_model_joint_loss_gradients(rng):
    """The full micro model (LSTM trunk + two heads + joint loss)."""
    config = MicroModelConfig(input_size=4, hidden_size=3, num_layers=2, alpha=0.7)
    model = MicroModel(config, rng)
    x = rng.standard_normal((4, 2, 4))
    drop_target = (rng.random((4, 2)) < 0.3).astype(float)
    latency_target = rng.standard_normal((4, 2))
    loss = JointDropLatencyLoss(alpha=config.alpha)

    def loss_fn() -> float:
        drop_logits, latency = model.forward(x)
        return loss.forward(drop_logits, latency, drop_target, latency_target).total

    def backward_fn() -> None:
        drop_logits, latency = model.forward(x)
        loss.forward(drop_logits, latency, drop_target, latency_target)
        grad_drop, grad_latency = loss.backward()
        model.backward(grad_drop, grad_latency)

    worst = check_module_gradients(model, loss_fn, backward_fn, eps=1e-5)
    assert worst < TOLERANCE


def test_lstm_step_matches_forward(rng):
    """Stateful step-by-step inference equals the batched forward."""
    lstm = LSTM(input_size=3, hidden_size=4, num_layers=2, rng=rng)
    x = rng.standard_normal((6, 1, 3))
    out_seq, final = lstm.forward(x)
    state = lstm.initial_state(1)
    stepped = []
    for t in range(6):
        h, state = lstm.step(x[t], state)
        stepped.append(h)
    np.testing.assert_allclose(np.stack(stepped), out_seq, rtol=1e-12)
    for layer in range(2):
        np.testing.assert_allclose(state.h[layer], final.h[layer], rtol=1e-12)
        np.testing.assert_allclose(state.c[layer], final.c[layer], rtol=1e-12)


def test_lstm_state_copy_is_independent(rng):
    lstm = LSTM(input_size=2, hidden_size=3, num_layers=1, rng=rng)
    state = lstm.initial_state(1)
    snapshot = state.copy()
    _, state = lstm.step(rng.standard_normal((1, 2)), state)
    assert np.all(snapshot.h[0] == 0.0)


def test_forget_gate_bias_initialized_to_one(rng):
    cell = LSTMCell(2, 3, rng)
    np.testing.assert_array_equal(cell.bias.value[3:6], np.ones(3))


def test_backward_before_forward_raises(rng):
    lstm = LSTM(2, 2, 1, rng)
    with pytest.raises(RuntimeError):
        lstm.backward(np.zeros((1, 1, 2)))
    layer = Linear(2, 2, rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2)))
