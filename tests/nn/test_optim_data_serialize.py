"""Tests for optimizers, data utilities, and serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import BatchIterator, Standardizer, make_sequences
from repro.nn.linear import Linear
from repro.nn.lstm import LSTM
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.serialize import load_module_state, save_module_state


class _Quadratic(Module):
    """f(w) = ||w - target||^2 — a convex test problem."""

    def __init__(self, target: np.ndarray) -> None:
        self.w = Parameter(np.zeros_like(target), name="w")
        self.target = target

    def loss_and_grad(self) -> float:
        diff = self.w.value - self.target
        self.w.grad[...] = 2.0 * diff
        return float((diff**2).sum())


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        model = _Quadratic(target)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(200):
            model.zero_grad()
            model.loss_and_grad()
            opt.step()
        np.testing.assert_allclose(model.w.value, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([10.0])
        plain = _Quadratic(target)
        momentum = _Quadratic(target)
        opt_plain = SGD(plain.parameters(), lr=0.01, momentum=0.0)
        opt_momentum = SGD(momentum.parameters(), lr=0.01, momentum=0.9)
        for _ in range(50):
            for model, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                model.zero_grad()
                model.loss_and_grad()
                opt.step()
        assert abs(momentum.w.value[0] - 10.0) < abs(plain.w.value[0] - 10.0)

    def test_validation(self):
        p = [Parameter(np.zeros(2))]
        with pytest.raises(ValueError):
            SGD(p, lr=0.0)
        with pytest.raises(ValueError):
            SGD(p, lr=0.1, momentum=1.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.step()  # grad is zero; only decay acts
        assert param.value[0] < 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0])
        model = _Quadratic(target)
        opt = Adam(model.parameters(), lr=0.1)
        for _ in range(300):
            model.zero_grad()
            model.loss_and_grad()
            opt.step()
        np.testing.assert_allclose(model.w.value, target, atol=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)


class TestClipGradients:
    def test_noop_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad[...] = [1.0, 0.0, 0.0]
        norm = clip_gradients([p], max_norm=10.0)
        assert norm == pytest.approx(1.0)
        np.testing.assert_array_equal(p.grad, [1.0, 0.0, 0.0])

    def test_scales_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = [3.0, 4.0]
        clip_gradients([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)


class TestStandardizer:
    @given(
        st.integers(2, 50),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25)
    def test_roundtrip(self, n, f, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, f)) * 10 + 5
        s = Standardizer().fit(x)
        np.testing.assert_allclose(s.inverse_transform(s.transform(x)), x, rtol=1e-9)

    def test_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1000, 3)) * 4 + 7
        z = Standardizer().fit(x).transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_untouched(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        z = Standardizer().fit(x).transform(x)
        np.testing.assert_array_equal(z[:, 0], np.zeros(10))

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))

    def test_state_dict_roundtrip(self):
        x = np.random.default_rng(1).standard_normal((20, 3))
        s = Standardizer().fit(x)
        restored = Standardizer.from_state_dict(s.state_dict())
        np.testing.assert_array_equal(restored.transform(x), s.transform(x))


class TestMakeSequences:
    def test_shapes_and_remainder(self):
        features = np.arange(20).reshape(10, 2).astype(float)
        targets = np.arange(10).reshape(10, 1).astype(float)
        x, y = make_sequences(features, targets, window=3)
        assert x.shape == (3, 3, 2)
        assert y.shape == (3, 3, 1)
        # Remainder (10th sample) discarded.
        np.testing.assert_array_equal(x[0, 0], features[0])
        np.testing.assert_array_equal(x[-1, -1], features[8])

    def test_too_short_gives_empty(self):
        x, y = make_sequences(np.zeros((2, 3)), np.zeros((2, 1)), window=5)
        assert x.shape == (0, 5, 3)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            make_sequences(np.zeros((3, 1)), np.zeros((4, 1)), window=2)


class TestBatchIterator:
    def test_covers_all_windows(self):
        x = np.arange(14).reshape(7, 1, 2).repeat(2, axis=1).astype(float)
        y = np.zeros((7, 1, 1))
        it = BatchIterator(x, y, batch_size=3, rng=np.random.default_rng(0))
        seen = 0
        for xb, yb in it:
            assert xb.shape[0] == 2  # time-major (window length T=2)
            seen += xb.shape[1]
        assert seen == 7
        assert len(it) == 3

    def test_drop_last(self):
        x = np.zeros((7, 2, 3))
        y = np.zeros((7, 2, 1))
        it = BatchIterator(x, y, batch_size=3, rng=np.random.default_rng(0), drop_last=True)
        batches = list(it)
        assert len(batches) == 2
        assert len(it) == 2

    def test_reproducible_with_same_rng_seed(self):
        x = np.arange(10).reshape(10, 1, 1).astype(float)
        y = x.copy()
        order1 = [xb[0, :, 0].tolist() for xb, _ in BatchIterator(x, y, 4, np.random.default_rng(7))]
        order2 = [xb[0, :, 0].tolist() for xb, _ in BatchIterator(x, y, 4, np.random.default_rng(7))]
        assert order1 == order2


class TestSerialization:
    def test_roundtrip(self, tmp_path, rng):
        lstm = LSTM(3, 4, 2, rng)
        path = tmp_path / "model.npz"
        save_module_state(lstm, path, metadata={"note": np.asarray(1.5)})
        clone = LSTM(3, 4, 2, np.random.default_rng(999))
        meta = load_module_state(clone, path)
        for (_, a), (_, b) in zip(lstm.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.value, b.value)
        assert float(meta["note"]) == 1.5

    def test_shape_mismatch_raises(self, tmp_path, rng):
        small = Linear(2, 2, rng)
        save_module_state(small, tmp_path / "m.npz")
        big = Linear(3, 2, rng)
        # Parameter names coincide ('weight'/'bias') but shapes differ.
        with pytest.raises(ValueError):
            load_module_state(big, tmp_path / "m.npz")

    def test_missing_parameter_raises(self, tmp_path, rng):
        layer = Linear(2, 2, rng)
        save_module_state(layer, tmp_path / "m.npz")
        lstm = LSTM(2, 2, 1, rng)
        with pytest.raises(KeyError):
            load_module_state(lstm, tmp_path / "m.npz")

    def test_suffixless_path_roundtrips(self, tmp_path, rng):
        # np.savez appends .npz silently; save/load must agree on the
        # real path rather than writing m.npz and reading m.
        layer = Linear(2, 2, rng)
        written = save_module_state(layer, tmp_path / "m")
        assert written == tmp_path / "m.npz"
        assert written.exists()
        clone = Linear(2, 2, rng)
        load_module_state(clone, tmp_path / "m")
        np.testing.assert_array_equal(layer.weight.value, clone.weight.value)

    def test_save_returns_actual_path(self, tmp_path, rng):
        layer = Linear(2, 2, rng)
        assert save_module_state(layer, tmp_path / "m.npz") == tmp_path / "m.npz"
        # A non-.npz suffix gets the archive suffix appended (numpy's
        # own behavior), and the returned path reflects it.
        written = save_module_state(layer, tmp_path / "weights.bak")
        assert written == tmp_path / "weights.bak.npz"
        assert written.exists()


class TestModuleContainers:
    def test_named_parameters_cover_nested(self, rng):
        lstm = LSTM(2, 3, 2, rng)
        names = [name for name, _ in lstm.named_parameters()]
        assert len(names) == 6  # 2 layers x (w_input, w_recurrent, bias)
        assert len(set(names)) == 6
        assert any("layers.0" in n for n in names)

    def test_parameter_count(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.parameter_count() == 4 * 3 + 3

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        assert np.any(layer.weight.grad != 0)
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0)
