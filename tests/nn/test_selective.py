"""Tests for SelectiveLinear and the per-macro micro model variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.gradcheck import check_module_gradients, max_relative_error, numerical_gradient
from repro.nn.losses import JointDropLatencyLoss
from repro.nn.selective import SelectiveLinear

TOLERANCE = 1e-5


def test_forward_routes_by_index(rng):
    layer = SelectiveLinear(3, 4, rng)
    x = rng.standard_normal((5, 3))
    index = np.array([0, 1, 2, 3, 0])
    out = layer.forward(x, index)
    for i in range(5):
        expected = x[i] @ layer.weight.value[index[i]] + layer.bias.value[index[i]]
        assert out[i] == pytest.approx(expected)


def test_gradients_match_numeric(rng):
    layer = SelectiveLinear(3, 4, rng)
    x = rng.standard_normal((2, 5, 3))  # (T, B, F)
    index = rng.integers(0, 4, size=(2, 5))
    target = rng.standard_normal((2, 5))

    def loss_fn() -> float:
        return float(((layer.forward(x, index) - target) ** 2).sum())

    def backward_fn() -> None:
        out = layer.forward(x, index)
        layer.backward(2.0 * (out - target))

    worst = check_module_gradients(layer, loss_fn, backward_fn, eps=1e-5)
    assert worst < TOLERANCE


def test_input_gradient(rng):
    layer = SelectiveLinear(4, 3, rng)
    x = rng.standard_normal((6, 4))
    index = rng.integers(0, 3, size=6)
    target = rng.standard_normal(6)
    out = layer.forward(x, index)
    grad_x = layer.backward(2.0 * (out - target))

    def loss_fn() -> float:
        return float(((layer.forward(x, index) - target) ** 2).sum())

    numeric = numerical_gradient(loss_fn, x, eps=1e-5)
    assert max_relative_error(grad_x, numeric) < TOLERANCE


def test_unused_heads_get_zero_gradient(rng):
    layer = SelectiveLinear(2, 4, rng)
    x = rng.standard_normal((3, 2))
    index = np.zeros(3, dtype=int)  # only head 0 used
    layer.zero_grad()
    out = layer.forward(x, index)
    layer.backward(np.ones(3))
    assert np.any(layer.weight.grad[0] != 0)
    assert np.all(layer.weight.grad[1:] == 0)
    assert np.all(layer.bias.grad[1:] == 0)


def test_validation(rng):
    layer = SelectiveLinear(2, 2, rng)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((3, 2)), np.array([0, 1, 2]))  # index out of range
    with pytest.raises(ValueError):
        layer.forward(np.zeros((3, 2)), np.array([0, 1]))  # shape mismatch
    with pytest.raises(RuntimeError):
        SelectiveLinear(2, 2, rng).backward(np.zeros(3))
    with pytest.raises(ValueError):
        SelectiveLinear(2, 0, rng)


def test_forward_single_matches_batched(rng):
    layer = SelectiveLinear(5, 4, rng)
    x = rng.standard_normal(5)
    for head in range(4):
        single = layer.forward_single(x, head)
        batched = layer.forward(x.reshape(1, 5), np.array([head]))[0]
        assert single == pytest.approx(batched)


class TestPerMacroMicroModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MicroModelConfig(heads="mixture")

    def test_forward_requires_macro_index(self, rng):
        config = MicroModelConfig(input_size=4, hidden_size=6, num_layers=1,
                                  heads="per_macro")
        model = MicroModel(config, rng)
        with pytest.raises(ValueError):
            model.forward(rng.standard_normal((2, 3, 4)))

    def test_joint_gradients(self, rng):
        config = MicroModelConfig(input_size=4, hidden_size=3, num_layers=1,
                                  heads="per_macro", alpha=0.6)
        model = MicroModel(config, rng)
        x = rng.standard_normal((3, 2, 4))
        macro = rng.integers(0, 4, size=(3, 2))
        drop_target = (rng.random((3, 2)) < 0.3).astype(float)
        latency_target = rng.standard_normal((3, 2))
        loss = JointDropLatencyLoss(alpha=config.alpha)

        def loss_fn() -> float:
            d, l = model.forward(x, macro_index=macro)
            return loss.forward(d, l, drop_target, latency_target).total

        def backward_fn() -> None:
            d, l = model.forward(x, macro_index=macro)
            loss.forward(d, l, drop_target, latency_target)
            gd, gl = loss.backward()
            model.backward(gd, gl)

        worst = check_module_gradients(model, loss_fn, backward_fn, eps=1e-5)
        assert worst < TOLERANCE

    def test_predict_step_uses_selected_head(self, rng):
        config = MicroModelConfig(input_size=4, hidden_size=6, num_layers=1,
                                  heads="per_macro")
        model = MicroModel(config, rng)
        features = rng.standard_normal(4)
        outputs = set()
        for head in range(4):
            state = model.initial_state()
            p, latency, _ = model.predict_step(features, state, macro_index=head)
            outputs.add((round(p, 12), round(latency, 12)))
        assert len(outputs) == 4  # different heads, different predictions

    def test_end_to_end_training_pipeline(self):
        """Full stage 1-3 with per-macro heads (small budget)."""
        from repro.core.pipeline import (
            ExperimentConfig, run_hybrid_simulation, train_reusable_model,
        )
        from repro.topology.clos import ClosParams

        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.005, seed=121
        )
        micro = MicroModelConfig(
            hidden_size=12, num_layers=1, window=8, train_batches=15,
            heads="per_macro",
        )
        trained, _ = train_reusable_model(config, micro=micro)
        assert trained.config.heads == "per_macro"
        result, _ = run_hybrid_simulation(config, trained)
        assert result.model_packets > 0

    def test_bundle_roundtrip_preserves_heads(self, tmp_path):
        from repro.core.pipeline import ExperimentConfig, train_reusable_model
        from repro.core.training import TrainedClusterModel
        from repro.topology.clos import ClosParams

        config = ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=122
        )
        micro = MicroModelConfig(
            hidden_size=8, num_layers=1, window=8, train_batches=5,
            heads="per_macro",
        )
        trained, _ = train_reusable_model(config, micro=micro)
        trained.save(tmp_path / "pm")
        loaded = TrainedClusterModel.load(tmp_path / "pm")
        assert loaded.config.heads == "per_macro"
        bundle = next(iter(loaded.directions.values()))
        assert bundle.model.drop_head.num_heads == 4
