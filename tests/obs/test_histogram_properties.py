"""Property tests for the histogram backend (StreamingStats).

The observability layer leans on three guarantees of the bounded
streaming backend, so they are pinned here property-style:

1. quantile estimates always lie inside [min, max] of the true stream,
   no matter how the bounded reservoir decimated it;
2. Welford count/mean/std agree with numpy computed on the full stream;
3. merging (Chan's parallel combine, used by ``Histogram.merge``) is
   equivalent to having observed one concatenated stream, and
   summarizing is idempotent and side-effect free;
4. everything is deterministic and RNG-free — instrumenting a hot path
   must never perturb a seeded simulation.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import StreamingStats
from repro.obs.registry import Histogram

#: Finite, non-degenerate floats; magnitudes capped so numpy's float64
#: mean/std comparisons stay meaningful.
values = st.lists(
    st.floats(
        min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=300,
)

small_caps = st.integers(min_value=2, max_value=32)


@settings(max_examples=100, deadline=None)
@given(data=values, max_samples=small_caps)
def test_quantiles_bounded_by_true_extremes(data, max_samples):
    stats = StreamingStats(max_samples=max_samples)
    stats.extend(data)
    lo, hi = min(data), max(data)
    assert stats.min == lo and stats.max == hi
    for q in (0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0):
        estimate = stats.percentile(q)
        assert estimate is not None
        assert lo <= estimate <= hi


@settings(max_examples=100, deadline=None)
@given(data=values)
def test_welford_moments_match_numpy(data):
    stats = StreamingStats()
    stats.extend(data)
    arr = np.asarray(data, dtype=np.float64)
    assert stats.count == arr.size
    scale = max(1.0, float(np.abs(arr).max()))
    assert stats.mean == pytest_approx(float(arr.mean()), scale)
    assert stats.std == pytest_approx(float(arr.std(ddof=0)), scale)


def pytest_approx(expected: float, scale: float):
    import pytest

    # Relative to the data's magnitude: summing 300 values of size 1e12
    # legitimately rounds in the last few bits.
    return pytest.approx(expected, rel=1e-9, abs=1e-9 * scale)


@settings(max_examples=100, deadline=None)
@given(left=values, right=values, max_samples=small_caps)
def test_merge_equals_concatenated_stream(left, right, max_samples):
    merged = StreamingStats(max_samples=max_samples)
    merged.extend(left)
    other = StreamingStats(max_samples=max_samples)
    other.extend(right)
    merged.merge(other)

    both = left + right
    arr = np.asarray(both, dtype=np.float64)
    scale = max(1.0, float(np.abs(arr).max()))
    assert merged.count == len(both)
    assert merged.min == min(both) and merged.max == max(both)
    assert merged.mean == pytest_approx(float(arr.mean()), scale)
    assert merged.std == pytest_approx(float(arr.std(ddof=0)), scale)
    # The bounded reservoir stays bounded through merges...
    assert len(merged.sample) <= merged.max_samples
    # ...and quantile estimates stay inside the true range.
    p50 = merged.percentile(50.0)
    assert min(both) <= p50 <= max(both)
    # The donor is not consumed.
    assert other.count == len(right)


@settings(max_examples=50, deadline=None)
@given(data=values, max_samples=small_caps)
def test_merge_empty_is_identity_both_ways(data, max_samples):
    stats = StreamingStats(max_samples=max_samples)
    stats.extend(data)
    before = stats.summary()
    stats.merge(StreamingStats(max_samples=max_samples))
    assert stats.summary() == before

    empty = StreamingStats(max_samples=max_samples)
    empty.merge(stats)
    assert empty.count == stats.count
    assert empty.summary() == stats.summary()


@settings(max_examples=50, deadline=None)
@given(data=values)
def test_summary_is_idempotent_and_pure(data):
    stats = StreamingStats(max_samples=16)
    stats.extend(data)
    first = stats.summary()
    # Summarizing must not mutate state: repeated calls are identical,
    # and the retained sample is untouched.
    sample_before = list(stats.sample)
    assert stats.summary() == first
    assert list(stats.sample) == sample_before


@settings(max_examples=50, deadline=None)
@given(data=values, max_samples=small_caps)
def test_deterministic_and_rng_free(data, max_samples):
    # Two identical streams produce byte-identical state: the reservoir
    # is systematic (stride doubling), not randomized.
    a = StreamingStats(max_samples=max_samples)
    b = StreamingStats(max_samples=max_samples)
    # If the implementation secretly consumed any global RNG, seeding
    # them differently around the two builds would diverge the result.
    random.seed(1)
    np.random.seed(1)
    a.extend(data)
    random.seed(2)
    np.random.seed(2)
    b.extend(data)
    assert a.summary() == b.summary()
    assert a.sample == b.sample

    # ...and building the stats draws nothing from the global streams.
    np.random.seed(3)
    expected_next = np.random.random()
    np.random.seed(3)
    c = StreamingStats(max_samples=max_samples)
    c.extend(data)
    c.summary()
    assert np.random.random() == expected_next


@settings(max_examples=50, deadline=None)
@given(left=values, right=values)
def test_histogram_merge_wrapper(left, right):
    """Histogram.merge delegates to the backend and chains."""
    a = Histogram("h")
    b = Histogram("h")
    for value in left:
        a.observe(value)
    for value in right:
        b.observe(value)
    assert a.merge(b) is a
    assert a.count == len(left) + len(right)
    assert a.summary()["min"] == min(left + right)
    assert a.summary()["max"] == max(left + right)
