"""End-to-end observability: pipeline, manifests, CLI, zero-guards."""

from __future__ import annotations

import json

import pytest

from repro.core.hybrid import HybridSimulation
from repro.core.pipeline import (
    ExperimentConfig,
    RunResult,
    run_hybrid_simulation,
)
from repro.des.kernel import Simulator
from repro.obs import MetricsRegistry, read_jsonl
from repro.topology.clos import ClosParams, build_clos

RUN_CONFIG = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.25, duration_s=0.003, seed=31
)


@pytest.fixture(scope="module")
def observed_run(trained_bundle):
    """One instrumented hybrid run shared by this module's tests."""
    reg = MetricsRegistry()
    result, hybrid_sim = run_hybrid_simulation(
        RUN_CONFIG, trained_bundle, metrics=reg
    )
    return reg, result, hybrid_sim


class TestHybridInstrumentation:
    def test_snapshot_covers_every_subsystem(self, observed_run):
        reg, result, _ = observed_run
        snap = reg.snapshot()
        spans = {s["name"] for s in snap["spans"]}
        assert "des.run" in spans
        hists = {h["name"] for h in snap["histograms"]}
        assert {"hybrid.inference_seconds", "hybrid.predicted_latency_s"} <= hists
        assert {"probe.queue_depth_bytes", "probe.macro_state"} <= hists
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges["des.events_executed"] == result.events_executed
        assert gauges["des.sim_time_s"] == pytest.approx(RUN_CONFIG.duration_s)
        assert len(snap["probes"]["samples"]) > 0

    def test_per_packet_instruments_match_entity_counters(self, observed_run):
        reg, result, hybrid_sim = observed_run
        model = hybrid_sim.models[1]
        cluster = model.region.name
        infer = reg.histogram("hybrid.inference_seconds", cluster=cluster)
        assert infer.count == model.packets_handled == result.model_packets
        latency = reg.histogram("hybrid.predicted_latency_s", cluster=cluster)
        assert latency.count == model.packets_delivered
        drops = reg.counter("hybrid.model_drops", cluster=cluster)
        assert drops.value == model.packets_dropped
        conflicts = reg.counter("hybrid.conflicts_resolved", cluster=cluster)
        assert conflicts.value == model.conflicts_resolved

    def test_probe_samples_in_sim_time_order(self, observed_run):
        reg, _, _ = observed_run
        times = [s.t_sim for s in reg.probe_samples]
        assert times == sorted(times)
        assert times[-1] <= RUN_CONFIG.duration_s + 1e-12

    def test_des_run_span_tracks_kernel_wallclock(self, observed_run):
        reg, result, _ = observed_run
        span = reg.span("des.run")
        assert span.count == 1
        # Same clock, same scope (the kernel times itself identically).
        assert span.total_s == pytest.approx(result.wallclock_seconds, rel=0.05)


class TestDeterminismInvariant:
    def test_metrics_do_not_perturb_seeded_runs(self, trained_bundle):
        bare, _ = run_hybrid_simulation(RUN_CONFIG, trained_bundle)
        observed, _ = run_hybrid_simulation(
            RUN_CONFIG, trained_bundle, metrics=MetricsRegistry()
        )
        assert observed.rtt_samples == bare.rtt_samples
        assert observed.fcts == bare.fcts
        assert observed.drops == bare.drops
        assert observed.model_packets == bare.model_packets
        assert observed.model_drops == bare.model_drops
        # The only event-count delta is the probe ticks themselves.
        assert observed.events_executed > bare.events_executed

    def test_disabled_registry_equals_no_registry(self, trained_bundle):
        bare, _ = run_hybrid_simulation(RUN_CONFIG, trained_bundle)
        disabled, _ = run_hybrid_simulation(
            RUN_CONFIG, trained_bundle, metrics=MetricsRegistry(enabled=False)
        )
        assert disabled.events_executed == bare.events_executed
        assert disabled.rtt_samples == bare.rtt_samples


class TestRateGuards:
    """Satellite: zero packets / zero wall-clock never produce inf/NaN."""

    def _zero_wallclock_result(self, **overrides) -> RunResult:
        defaults = dict(
            sim_seconds=0.01,
            wallclock_seconds=0.0,
            events_executed=100,
            flows_started=0,
            flows_completed=0,
            flows_elided=0,
            drops=0,
            rtt_samples=[],
            fcts=[],
        )
        defaults.update(overrides)
        return RunResult(**defaults)

    def test_run_result_rates_guard_zero_wallclock(self):
        result = self._zero_wallclock_result(model_packets=5)
        assert result.sim_seconds_per_second == 0.0
        assert result.events_per_second == 0.0
        assert result.inference_share == 0.0
        assert result.model_packets_per_sec == 0.0
        json.dumps(
            [
                result.sim_seconds_per_second,
                result.events_per_second,
                result.inference_share,
                result.model_packets_per_sec,
            ]
        )  # no inf/NaN ever reaches JSON

    def test_run_result_rates_with_positive_wallclock(self):
        result = self._zero_wallclock_result(wallclock_seconds=2.0, model_packets=6)
        assert result.sim_seconds_per_second == pytest.approx(0.005)
        assert result.events_per_second == pytest.approx(50.0)
        assert result.model_packets_per_sec == pytest.approx(3.0)

    def test_hot_path_counters_guard_zero_packets(self, trained_bundle):
        topo = build_clos(ClosParams(clusters=2))
        hybrid = HybridSimulation(Simulator(seed=1), topo, trained_bundle)
        # No traffic ran: zero packets, zero inference.
        counters = hybrid.hot_path_counters(wallclock_s=0.0)
        assert counters["inference_seconds_per_packet"] == 0.0
        assert counters["inference_share"] == 0.0
        assert counters["model_packets_per_sec"] == 0.0
        json.dumps(counters)
        # Without a wall-clock the rate keys are simply absent.
        assert "inference_share" not in hybrid.hot_path_counters()


class TestManifestIntegration:
    SPEC = {
        "name": "obs-sim",
        "stage": "simulate",
        "experiment": {"clusters": 2, "load": 0.15, "duration_s": 0.001, "seed": 5},
    }

    def _submit(self, out_dir):
        from repro.runs import ScenarioSpec, SchedulerConfig, SweepScheduler

        spec = ScenarioSpec.from_dict(dict(self.SPEC))
        scheduler = SweepScheduler(
            spec, out_dir, config=SchedulerConfig(workers=0, retries=0)
        )
        return scheduler.submit()

    def test_manifest_embeds_metrics_snapshot_and_jsonl(self, tmp_path):
        [manifest] = self._submit(tmp_path)
        assert manifest.status == "completed"
        snap = manifest.metrics
        assert snap is not None and snap["enabled"] is True
        assert any(s["name"] == "des.run" for s in snap["spans"])
        assert manifest.result["events_per_second"] > 0
        # The JSONL artifact sits next to the manifest and parses back.
        path = tmp_path / manifest.run_id / "metrics.jsonl"
        assert manifest.artifacts["metrics"] == str(path)
        records = read_jsonl(path)
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "probe" for r in records)

    def test_old_manifests_without_metrics_still_load(self, tmp_path):
        from repro.runs import RunManifest

        [manifest] = self._submit(tmp_path)
        raw = json.loads(
            (tmp_path / manifest.run_id / "manifest.json").read_text()
        )
        del raw["metrics"]  # a pre-obs manifest
        loaded = RunManifest.from_dict(raw)
        assert loaded.metrics is None

    def test_scheduler_metrics_observe_dispatch(self, tmp_path):
        from repro.runs import ScenarioSpec, SchedulerConfig, SweepScheduler

        reg = MetricsRegistry()
        spec = ScenarioSpec.from_dict(dict(self.SPEC))
        SweepScheduler(
            spec, tmp_path, config=SchedulerConfig(workers=0, retries=0),
            metrics=reg,
        ).submit()
        assert reg.counter("sweep.runs_dispatched").value == 1
        assert reg.counter("sweep.runs_settled", status="completed").value == 1
        assert reg.span("sweep.submit").count == 1


class TestCli:
    def test_simulate_metrics_out(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.jsonl"
        code = main([
            "simulate", "--clusters", "2", "--load", "0.15",
            "--duration", "0.001", "--seed", "5", "--metrics-out", str(out),
        ])
        assert code == 0
        assert f"metrics records to {out}" in capsys.readouterr().out
        records = read_jsonl(out)
        assert records[0] == {
            "type": "meta", "enabled": True, "probe_samples_dropped": 0
        }
        assert any(r["type"] == "span" and r["name"] == "des.run" for r in records)
        assert any(r["type"] == "probe" for r in records)

    def test_obs_show_renders_manifest(self, tmp_path, capsys):
        from repro.cli import main
        from repro.runs import ScenarioSpec, SchedulerConfig, SweepScheduler

        spec = ScenarioSpec.from_dict(dict(TestManifestIntegration.SPEC))
        [manifest] = SweepScheduler(
            spec, tmp_path, config=SchedulerConfig(workers=0, retries=0)
        ).submit()
        code = main(["obs", "show", str(tmp_path / manifest.run_id)])
        out = capsys.readouterr().out
        assert code == 0
        assert manifest.run_id in out
        assert "des.run" in out
        assert "probe samples:" in out

    def test_obs_show_missing_manifest(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["obs", "show", str(tmp_path / "nope")])
        assert code == 2
        assert "cannot load manifest" in capsys.readouterr().err
