"""Sim-time probes and their interop with simlog and packet tracing.

The contracts under test: probe samples are stamped with *simulated*
time and recorded in event order, interleaved deterministically with
the traffic they observe; the sim-time logger sees the same clock; and
attaching the observability layer leaves a ``PacketTracer`` CSV
byte-identical — instrumentation observes the simulation, it never
participates in it.
"""

from __future__ import annotations

import logging

import pytest

from repro.core.pipeline import ExperimentConfig, make_generator
from repro.des.kernel import Simulator
from repro.des.simlog import get_sim_logger
from repro.net.network import Network
from repro.net.tracing import PacketTracer
from repro.obs import (
    DEFAULT_TICKS,
    MetricsRegistry,
    SimTimeProbes,
    attach_network_probes,
    default_period,
)
from repro.topology.clos import ClosParams, build_clos


class TestSimTimeProbes:
    def test_samples_are_sim_time_stamped_in_event_order(self):
        sim = Simulator(seed=1)
        reg = MetricsRegistry()
        ticks_seen: list[float] = []
        probes = SimTimeProbes(reg, sim, period_s=0.25)
        probes.add("clock", lambda: sim.now)
        probes.start()
        # Interleave ordinary events between probe ticks.
        for t in (0.1, 0.3, 0.6, 1.1):
            sim.schedule(t, lambda: ticks_seen.append(sim.now))
        sim.run(until=1.0)

        samples = reg.probe_samples
        assert [s.t_sim for s in samples] == pytest.approx([0.25, 0.5, 0.75, 1.0])
        # The sampler saw the simulated clock, not wall-clock.
        assert [s.value for s in samples] == pytest.approx([0.25, 0.5, 0.75, 1.0])
        # Event order == time order (the kernel interleaved probe ticks
        # with the other events deterministically).
        assert ticks_seen == [0.1, 0.3, 0.6]
        assert probes.ticks == 4

    def test_probe_feeds_matching_histogram(self):
        sim = Simulator(seed=1)
        reg = MetricsRegistry()
        SimTimeProbes(reg, sim, period_s=0.1).add(
            "depth", lambda: 7.0, cluster="c1"
        ).start()
        sim.schedule(1.0, lambda: None)  # keep the sim alive to 1.0
        sim.run(until=1.0)
        hist = reg.histogram("probe.depth", cluster="c1")
        assert hist.count == len(reg.probe_samples) == 10
        assert hist.summary()["min"] == hist.summary()["max"] == 7.0

    def test_stop_cancels_future_ticks(self):
        sim = Simulator(seed=1)
        reg = MetricsRegistry()
        probes = SimTimeProbes(reg, sim, period_s=0.1).add("x", lambda: 0.0).start()
        sim.schedule(0.25, probes.stop)
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        assert probes.ticks == 2  # 0.1 and 0.2 only

    def test_disabled_registry_schedules_nothing(self):
        sim = Simulator(seed=1)
        probes = SimTimeProbes(MetricsRegistry(enabled=False), sim, period_s=0.1)
        probes.add("x", lambda: 0.0).start()
        assert sim.pending_events == 0

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            SimTimeProbes(MetricsRegistry(), Simulator(), period_s=0.0)

    def test_default_period(self):
        assert default_period(1.0) == pytest.approx(1.0 / DEFAULT_TICKS)
        assert default_period(0.0) > 0  # never a zero period


class TestSimlogInterop:
    def test_logger_and_probe_agree_on_the_clock(self, caplog):
        """A sampler that logs sees the same sim time the probe stamps."""
        sim = Simulator(seed=1)
        reg = MetricsRegistry()
        log = get_sim_logger(sim, name="test.obs", component="probe")

        def sampler() -> float:
            log.info("sampling")
            return 1.0

        SimTimeProbes(reg, sim, period_s=0.5).add("x", sampler).start()
        sim.schedule(1.0, lambda: None)
        with caplog.at_level(logging.INFO, logger="test.obs"):
            sim.run(until=1.0)
        stamped = [s.t_sim for s in reg.probe_samples]
        logged = [
            record.getMessage() for record in caplog.records
        ]
        assert len(logged) == len(stamped) == 2
        for message, t_sim in zip(logged, stamped):
            assert message == f"[t={t_sim:.9f}] probe: sampling"


class TestTracerInterop:
    CONFIG = ExperimentConfig(
        clos=ClosParams(clusters=2), load=0.2, duration_s=0.002, seed=11
    )

    def _traced_run(self, tmp_path, name: str, metrics: MetricsRegistry | None):
        """The CLI's manual simulate+trace assembly, obs optional."""
        config = self.CONFIG
        topology = build_clos(config.clos)
        sim = Simulator(seed=config.seed)
        if metrics is not None:
            sim.metrics = metrics
        network = Network(sim, topology, config=config.net)
        tracer = PacketTracer(network)
        generator = make_generator(sim, network, config)
        if metrics is not None:
            attach_network_probes(
                metrics, sim, network, default_period(config.duration_s)
            )
        generator.start()
        sim.run(until=config.duration_s)
        path = tmp_path / name
        tracer.write_csv(path)
        return path

    @staticmethod
    def _normalized_rows(path) -> tuple[list[dict], list[int]]:
        """CSV rows with the process-global packet_id split out.

        ``packet_id`` comes from a global itertools counter, so any two
        runs in one process differ there by a constant offset; the
        *relative* id sequence plus every other column is what a
        metrics-attached run must reproduce exactly.
        """
        import csv

        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        ids = [int(row.pop("packet_id")) for row in rows]
        base = min(ids) if ids else 0
        return rows, [i - base for i in ids]

    def test_packet_trace_csv_identical_with_registry_attached(self, tmp_path):
        bare = self._traced_run(tmp_path, "bare.csv", None)
        reg = MetricsRegistry()
        observed = self._traced_run(tmp_path, "observed.csv", reg)
        bare_rows, bare_ids = self._normalized_rows(bare)
        observed_rows, observed_ids = self._normalized_rows(observed)
        assert len(bare_rows) > 0
        assert observed_rows == bare_rows
        assert observed_ids == bare_ids
        # The registry really was live during the traced run.
        assert len(reg.probe_samples) > 0
        assert reg.span("des.run").count == 1
