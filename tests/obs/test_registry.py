"""Unit tests for the metrics registry and its instruments."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, read_jsonl
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_SPAN,
)


class TestInstrumentIdentity:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("a") is reg.gauge("a")
        assert reg.histogram("a") is reg.histogram("a")
        assert reg.span("a") is reg.span("a")

    def test_labels_separate_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("drops", cluster="c1") is not reg.counter(
            "drops", cluster="c2"
        )
        assert reg.counter("drops", cluster="c1") is not reg.counter("drops")

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        # int and str label values that print the same are the same key.
        assert reg.counter("x", cluster=3) is reg.counter("x", cluster="3")

    def test_kinds_are_independent_namespaces(self):
        reg = MetricsRegistry()
        reg.counter("same").inc()
        reg.gauge("same").set(5)
        reg.histogram("same").observe(1.0)
        snap = reg.snapshot()
        assert len(snap["counters"]) == 1
        assert len(snap["gauges"]) == 1
        assert len(snap["histograms"]) == 1


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestSpan:
    def test_records_count_and_time(self):
        span = MetricsRegistry().span("s")
        for _ in range(3):
            with span:
                pass
        assert span.count == 3
        assert span.errors == 0
        assert span.total_s >= 0.0
        summary = span.summary()
        assert summary["count"] == 3
        assert summary["seconds_max"] >= summary["seconds_min"] >= 0.0

    def test_exception_safe(self):
        span = MetricsRegistry().span("s")
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("boom")
        assert span.count == 1
        assert span.errors == 1
        assert span.depth == 0  # the start stack was popped

    def test_nesting(self):
        span = MetricsRegistry().span("s")

        def recurse(depth: int) -> None:
            with span:
                assert span.depth == depth + 1
                if depth < 2:
                    recurse(depth + 1)

        recurse(0)
        assert span.depth == 0
        assert span.count == 3  # one exit per level

    def test_labeled_spans_are_distinct(self):
        reg = MetricsRegistry()
        with reg.span("train.batch", direction="ingress"):
            pass
        assert reg.span("train.batch", direction="ingress").count == 1
        assert reg.span("train.batch", direction="egress").count == 0


class TestDisabledRegistry:
    def test_hands_out_shared_null_singletons(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_COUNTER
        assert reg.counter("b", any="label") is NULL_COUNTER
        assert reg.gauge("a") is NULL_GAUGE
        assert reg.histogram("a") is NULL_HISTOGRAM
        assert reg.span("a") is NULL_SPAN
        assert reg.handles_enabled() is False

    def test_null_instruments_are_inert(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(5)
        reg.gauge("a").set(5)
        reg.histogram("a").observe(5)
        with reg.span("a"):
            pass
        reg.record_probe(0.1, "q", 3.0)
        assert reg.probe_samples == []
        assert reg.snapshot() == {"enabled": False}

    def test_disabled_jsonl_is_header_only(self, tmp_path):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc()
        path = tmp_path / "m.jsonl"
        assert reg.write_jsonl(path) == 1
        records = read_jsonl(path)
        assert records == [
            {"type": "meta", "enabled": False, "probe_samples_dropped": 0}
        ]


class TestProbeSamples:
    def test_recorded_in_order_with_labels(self):
        reg = MetricsRegistry()
        reg.record_probe(0.1, "q", 1.0, cluster="c1")
        reg.record_probe(0.2, "q", 2.0, cluster="c1")
        samples = reg.probe_samples
        assert [s.t_sim for s in samples] == [0.1, 0.2]
        assert samples[0].to_dict() == {
            "t_sim": 0.1,
            "name": "q",
            "labels": {"cluster": "c1"},
            "value": 1.0,
        }

    def test_bounded_with_drop_counter(self):
        reg = MetricsRegistry(max_probe_samples=3)
        for i in range(10):
            reg.record_probe(i * 0.1, "q", float(i))
        assert len(reg.probe_samples) == 3
        assert reg.probe_samples_dropped == 7
        assert reg.snapshot()["probes"]["dropped"] == 7


class TestExport:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("events", kind="drop").inc(4)
        reg.gauge("sim_time").set(0.25)
        hist = reg.histogram("latency")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        with reg.span("loop"):
            pass
        reg.record_probe(0.01, "queue", 100.0, cluster="c1")
        reg.record_probe(0.02, "queue", 200.0, cluster="c1")
        return reg

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        assert snap["enabled"] is True
        [counter] = snap["counters"]
        assert counter == {"name": "events", "labels": {"kind": "drop"}, "value": 4.0}
        [hist] = snap["histograms"]
        assert hist["summary"]["count"] == 3
        assert hist["summary"]["min"] == 1.0 and hist["summary"]["max"] == 3.0
        [span] = snap["spans"]
        assert span["summary"]["count"] == 1
        assert [s["t_sim"] for s in snap["probes"]["samples"]] == [0.01, 0.02]

    def test_snapshot_is_json_serializable_and_idempotent(self):
        reg = self._populated()
        first = reg.snapshot()
        json.dumps(first)  # must not raise
        assert reg.snapshot() == first  # snapshotting mutates nothing

    def test_jsonl_round_trip(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "metrics.jsonl"
        rows = reg.write_jsonl(path)
        records = read_jsonl(path)
        assert len(records) == rows
        assert records[0]["type"] == "meta" and records[0]["enabled"] is True
        # Probe records come first, in recording order.
        probes = [r for r in records if r["type"] == "probe"]
        assert records[1 : 1 + len(probes)] == probes
        assert [p["t_sim"] for p in probes] == [0.01, 0.02]
        by_type = {r["type"] for r in records}
        assert by_type == {"meta", "probe", "counter", "gauge", "histogram", "span"}
        [counter] = [r for r in records if r["type"] == "counter"]
        assert counter["value"] == 4.0
