"""Unit and property tests for the flight-recorder tracing layer.

The tracing contract mirrors the metrics layer's: RNG-free, sim-time
stamped, bounded, and byte-stable for a seeded run.  Pinned here:

1. trace ids are pure functions of ``(seed, domain, flow id)``;
2. the ring evicts oldest-first with an exact eviction count
   (property-tested over arbitrary capacity/record-count pairs);
3. ``begin``/``end`` obey strict stack discipline — nesting is
   reconstructible from ``parent`` pointers, out-of-order closes raise
   (property-tested over random nesting trees);
4. JSONL round-trips losslessly and the Chrome export always carries
   the keys CI asserts on;
5. the offline helpers (merge order, flow lookup, top-span ranking)
   behave deterministically.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import (
    CHROME_REQUIRED_KEYS,
    DEFAULT_TRACE_CAPACITY,
    FlightRecorder,
    flow_events,
    merge_traces,
    read_trace_jsonl,
    to_chrome_trace,
    top_spans,
    trace_id,
    write_trace_jsonl,
)


# ----------------------------------------------------------------------
# Trace ids
# ----------------------------------------------------------------------
def test_trace_id_is_stable_and_seed_scoped():
    assert trace_id(7, 3) == trace_id(7, 3)
    assert len(trace_id(7, 3)) == 16
    int(trace_id(7, 3), 16)  # hex
    assert trace_id(7, 3) != trace_id(8, 3)
    assert trace_id(7, 3) != trace_id(7, 4)


def test_trace_id_domains_never_collide():
    """Packet-flow id 5 and fluid-flow id 5 are different flows."""
    assert trace_id(7, 5, "flow") != trace_id(7, 5, "fluid")


def test_recorder_memoizes_flow_ids():
    rec = FlightRecorder(seed=7)
    assert rec.trace_for_flow(3) == trace_id(7, 3)
    assert rec.trace_for_flow(3, "fluid") == trace_id(7, 3, "fluid")


# ----------------------------------------------------------------------
# Flow-key attribution (how hot paths resolve packets)
# ----------------------------------------------------------------------
class _FakePacket:
    def __init__(self, src, dst, src_port, dst_port):
        self.src, self.dst = src, dst
        self.src_port, self.dst_port = src_port, dst_port


def test_packet_attribution_matches_sender_and_reverse_ack():
    rec = FlightRecorder(seed=7)
    tid = rec.register_flow(0, key=("h1", 40001))
    data = _FakePacket("h1", "h2", 40001, 80)
    ack = _FakePacket("h2", "h1", 80, 40001)
    stranger = _FakePacket("h9", "h2", 40009, 80)
    assert rec.trace_for_packet(data) == tid
    assert rec.trace_for_packet(ack) == tid
    assert rec.trace_for_packet(stranger) is None
    assert rec.trace_for_key(("h1", 40001)) == tid
    assert rec.trace_for_key(("nope", 1)) is None


# ----------------------------------------------------------------------
# Ring buffer: bounded, oldest-first eviction
# ----------------------------------------------------------------------
def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(seed=1, capacity=0)


def test_default_capacity():
    assert FlightRecorder(seed=1).capacity == DEFAULT_TRACE_CAPACITY


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=64),
    total=st.integers(min_value=0, max_value=200),
)
def test_ring_keeps_newest_and_counts_evictions(capacity, total):
    """Survivors are exactly the last ``capacity`` records, in insertion
    order, and ``evicted + len(records) == recorded`` always holds."""
    rec = FlightRecorder(seed=1, capacity=capacity)
    for index in range(total):
        rec.event("tick", t=float(index), index=index)
    survivors = rec.records()
    assert rec.recorded == total
    assert rec.evicted == max(0, total - capacity)
    assert rec.evicted + len(survivors) == rec.recorded
    expected = list(range(max(0, total - capacity), total))
    assert [r["args"]["index"] for r in survivors] == expected
    # tail() is a suffix of the survivors
    assert rec.tail(limit=5) == survivors[-5:] if survivors else rec.tail() == []


def test_tail_caps_at_ring_length():
    rec = FlightRecorder(seed=1, capacity=8)
    for index in range(3):
        rec.event("tick", t=float(index))
    assert len(rec.tail(limit=64)) == 3


# ----------------------------------------------------------------------
# Span nesting: strict stack discipline
# ----------------------------------------------------------------------
def test_end_out_of_order_raises():
    rec = FlightRecorder(seed=1)
    outer = rec.begin("outer")
    rec.begin("inner")
    with pytest.raises(ValueError, match="out of order"):
        rec.end(outer)


def test_end_without_begin_raises():
    rec = FlightRecorder(seed=1)
    frame = rec.begin("only")
    rec.end(frame)
    with pytest.raises(ValueError):
        rec.end(frame)


@settings(max_examples=100, deadline=None)
@given(
    # A random nesting script: True opens a frame, False closes the
    # innermost open one (ignored when nothing is open).
    script=st.lists(st.booleans(), min_size=1, max_size=60)
)
def test_nesting_tree_reconstructible_from_parents(script):
    rec = FlightRecorder(seed=1, capacity=256)
    clock = [0.0]
    rec.bind_clock(lambda: clock[0])
    open_frames: list[dict] = []
    expected_parent: dict[int, object] = {}
    for opens in script:
        clock[0] += 1.0
        if opens:
            frame = rec.begin("op")
            expected_parent[frame["seq"]] = (
                open_frames[-1]["seq"] if open_frames else None
            )
            open_frames.append(frame)
        elif open_frames:
            rec.end(open_frames.pop())
    while open_frames:
        clock[0] += 1.0
        rec.end(open_frames.pop())
    for record in rec.records():
        assert record["parent"] == expected_parent[record["seq"]]
        assert record["t1"] >= record["t0"]  # monotonic fake clock


def test_nested_records_land_innermost_first_with_extra_args():
    rec = FlightRecorder(seed=1)
    clock = [1.0]
    rec.bind_clock(lambda: clock[0])
    outer = rec.begin("outer", trace="aa")
    inner = rec.begin("inner")
    clock[0] = 2.0
    rec.end(inner)
    rec.end(outer, verdict="deliver")
    records = rec.records()
    assert [r["name"] for r in records] == ["inner", "outer"]
    assert records[0]["parent"] == outer["seq"]
    assert records[1]["parent"] is None
    assert records[1]["args"]["verdict"] == "deliver"
    assert records[1] == outer  # end() returns/append the same frame dict


# ----------------------------------------------------------------------
# Merge order, JSONL round-trip, Chrome export
# ----------------------------------------------------------------------
def _worker_records(worker: int, times: list[float]) -> list[dict]:
    rec = FlightRecorder(seed=7, worker=worker)
    for t in times:
        rec.event("tick", t=t)
    return rec.records()


def test_merge_orders_by_time_then_worker_then_seq():
    merged = merge_traces(
        [_worker_records(1, [0.2, 0.1]), _worker_records(0, [0.1, 0.3])]
    )
    keys = [(r["t0"], r["worker"]) for r in merged]
    assert keys == [(0.1, 0), (0.1, 1), (0.2, 1), (0.3, 0)]


def test_jsonl_round_trip(tmp_path):
    rec = FlightRecorder(seed=7, worker=0)
    tid = rec.register_flow(0, key=("h1", 40001))
    rec.event("flow.admit", trace=tid, t=0.0, src="h1")
    rec.span("model.decide", 0.1, 0.2, trace=tid, verdict="deliver")
    path = tmp_path / "trace.jsonl"
    written = write_trace_jsonl(path, rec.records(), meta={"seed": 7, "workers": 1})
    assert written == 2
    meta, records = read_trace_jsonl(path)
    assert meta["seed"] == 7 and meta["schema"] == 1
    assert records == rec.records()


def test_chrome_export_carries_required_keys_and_microseconds():
    rec = FlightRecorder(seed=7, worker=2)
    tid = rec.trace_for_flow(0)
    rec.event("flow.admit", trace=tid, t=0.001)
    rec.span("model.decide", 0.001, 0.0015, trace=tid)
    doc = to_chrome_trace(rec.records())
    events = doc["traceEvents"]
    assert events, "export produced no events"
    for event in events:
        for key in CHROME_REQUIRED_KEYS:
            assert key in event, f"missing {key} in {event}"
    json.loads(json.dumps(doc))  # must serialize cleanly
    spans = [e for e in events if e["ph"] == "X"]
    assert spans and spans[0]["ts"] == pytest.approx(1000.0)  # 1 ms -> us
    assert spans[0]["dur"] == pytest.approx(500.0)
    instants = [e for e in events if e["ph"] == "i"]
    assert instants and all(e["pid"] == 2 for e in instants)


def test_chrome_export_is_deterministic():
    a = to_chrome_trace(_worker_records(0, [0.1, 0.2]))
    b = to_chrome_trace(_worker_records(0, [0.1, 0.2]))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


# ----------------------------------------------------------------------
# Offline analysis helpers
# ----------------------------------------------------------------------
def _two_flow_records() -> list[dict]:
    rec = FlightRecorder(seed=7)
    a = rec.trace_for_flow(0)
    b = rec.trace_for_flow(1)
    rec.event("flow.admit", trace=a, t=0.0)
    rec.span("model.decide", 0.0, 0.5, trace=a)
    rec.span("model.decide", 0.0, 0.1, trace=b)
    rec.event("flow.complete", trace=b, t=0.1)
    return rec.records()


def test_flow_events_exact_prefix_and_ambiguity():
    records = _two_flow_records()
    a = trace_id(7, 0)
    assert {r["trace"] for r in flow_events(records, a)} == {a}
    assert flow_events(records, a[:6]) == flow_events(records, a)
    assert flow_events(records, "zzzz") == []
    with pytest.raises(ValueError, match="ambiguous"):
        flow_events(records, "")  # empty prefix matches both flows


def test_top_spans_by_duration_and_count():
    records = _two_flow_records()
    by_duration = top_spans(records, by="span-duration", limit=1)
    assert by_duration[0]["duration_s"] == pytest.approx(0.5)
    assert by_duration[0]["trace"] == trace_id(7, 0)
    by_count = top_spans(records, by="count")
    assert by_count[0] == {"name": "model.decide", "count": 2}
    with pytest.raises(ValueError, match="unknown ranking"):
        top_spans(records, by="latency")


def test_snapshot_shape():
    rec = FlightRecorder(seed=7, worker=1, capacity=2)
    for t in (0.0, 0.1, 0.2):
        rec.event("tick", t=t)
    snap = rec.snapshot()
    assert snap["seed"] == 7 and snap["worker"] == 1
    assert snap["capacity"] == 2
    assert snap["recorded"] == 3 and snap["evicted"] == 1
    assert len(snap["events"]) == 2
