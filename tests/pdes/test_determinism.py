"""Determinism matrix and crash-surfacing regression for sharded hybrid.

Satellite 2 of the shard test pack: seeds × workers × (metrics on/off)
must produce byte-identical merged worker stats and outcome
distributions, and a worker crash mid-window must surface as a
structured error in the run manifest — never a hang.
"""

from __future__ import annotations

import time

import pytest

from repro.core.hybrid import HybridConfig
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig
from repro.pdes import HybridShardConfig, WorkerCrashError, run_hybrid_sharded
from repro.runs.executor import execute_run
from repro.runs.spec import RunRequest
from repro.topology.clos import ClosParams

HYBRID = HybridConfig(elide_remote_traffic=False)


def _experiment(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        clos=ClosParams(clusters=3), load=0.25, duration_s=0.0015, seed=seed
    )


# ----------------------------------------------------------------------
# Determinism matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("workers", [1, 2])
def test_same_seed_runs_byte_identical(trained_bundle, seed, workers):
    shard = HybridShardConfig(workers=workers)
    first = run_hybrid_sharded(
        _experiment(seed), trained_bundle, shard=shard, hybrid=HYBRID
    )
    again = run_hybrid_sharded(
        _experiment(seed), trained_bundle, shard=shard, hybrid=HYBRID
    )
    # Byte-identical merged worker stats (deterministic fields) ...
    assert first.determinism_signature() == again.determinism_signature()
    # ... and byte-identical outcome distributions.
    assert first.outcome_signature() == again.outcome_signature()
    assert first.invariant_violations == 0


def test_different_seeds_differ(trained_bundle):
    a = run_hybrid_sharded(
        _experiment(3),
        trained_bundle,
        shard=HybridShardConfig(workers=2),
        hybrid=HYBRID,
    )
    b = run_hybrid_sharded(
        _experiment(11),
        trained_bundle,
        shard=HybridShardConfig(workers=2),
        hybrid=HYBRID,
    )
    assert a.outcome_signature() != b.outcome_signature()


def test_metrics_do_not_perturb_outcomes(trained_bundle):
    """MetricsRegistry counters never schedule events, so the
    deterministic view is identical with observability on and off."""
    on = run_hybrid_sharded(
        _experiment(3),
        trained_bundle,
        shard=HybridShardConfig(workers=2, metrics=True),
        hybrid=HYBRID,
    )
    off = run_hybrid_sharded(
        _experiment(3),
        trained_bundle,
        shard=HybridShardConfig(workers=2, metrics=False),
        hybrid=HYBRID,
    )
    assert on.determinism_signature() == off.determinism_signature()
    assert on.outcome_signature() == off.outcome_signature()
    assert all(s.metrics_snapshot is not None for s in on.worker_stats)
    assert all(s.metrics_snapshot is None for s in off.worker_stats)


def test_merged_counters_report_every_worker(trained_bundle):
    result = run_hybrid_sharded(
        _experiment(3),
        trained_bundle,
        shard=HybridShardConfig(workers=2),
        hybrid=HYBRID,
    )
    merged = result.merged_counters()
    assert merged["workers"] == 2
    assert len(merged["per_worker"]) == 2
    assert merged["exchanges"] > 0
    assert merged["invariant_violations"] == 0
    assert merged["lookahead_violations"] == 0
    for entry in merged["per_worker"]:
        assert entry["windows"] > 0


# ----------------------------------------------------------------------
# Crash handling: structured error, not a hang
# ----------------------------------------------------------------------
def test_worker_crash_raises_structured_error(trained_bundle):
    with pytest.raises(WorkerCrashError) as exc_info:
        run_hybrid_sharded(
            _experiment(3),
            trained_bundle,
            shard=HybridShardConfig(workers=2, inject_crash=1),
            hybrid=HYBRID,
        )
    error = exc_info.value
    assert error.worker_index == 1
    assert error.error_type == "RuntimeError"
    assert "injected crash" in error.message
    assert "injected crash" in str(error)


def test_crash_lands_in_manifest_not_a_hang(tmp_path):
    """Regression: a worker dying mid-window used to be indistinguishable
    from a stall.  The executor must return a *failed* manifest carrying
    the structured WorkerCrashError, well inside the worker timeout."""
    request = RunRequest(
        run_id="crash-0000",
        index=0,
        spec_name="crash",
        stage="pdes-hybrid",
        axes={},
        seed_master=9,
        seed_derived=9,
        experiment=ExperimentConfig(
            clos=ClosParams(clusters=3), load=0.25, duration_s=0.0015, seed=9
        ),
        training=ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=7
        ),
        micro=MicroModelConfig(
            hidden_size=8, num_layers=1, window=8, train_batches=5
        ),
        hybrid={"workers": 2, "inject_crash": 0, "elide_remote_traffic": False},
    )
    started = time.monotonic()
    manifest = execute_run(
        request, str(tmp_path / "runs"), str(tmp_path / "models"), attempt=1
    )
    assert time.monotonic() - started < 120.0
    assert manifest["status"] == "failed"
    assert manifest["error"]["type"] == "WorkerCrashError"
    assert "injected crash" in manifest["error"]["message"]
