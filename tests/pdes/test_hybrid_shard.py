"""Sharded-hybrid test pack: byte identity, window rejection, schedule.

The determinism contract under test (DESIGN.md §11): a same-seed
N-worker sharded hybrid run produces **byte-identical** merged outcome
statistics (FCTs, RTTs, drops) for N ∈ {1, 2, 4}, and those statistics
are identical to the single-process hybrid under float64.  The window
validator must *reject* (never clamp) windows that exceed the safe
lookahead — including when inference batching shrinks the effective
model-egress bound below the physical cut-link delay.
"""

from __future__ import annotations

import pytest

from repro.core.cluster_model import MIN_REGION_LATENCY_S
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import ExperimentConfig, run_hybrid_simulation
from repro.pdes import (
    HybridShardConfig,
    ModelRef,
    PdesConfig,
    extract_flow_schedule,
    model_egress_lookahead,
    outcome_signature,
    resolve_hybrid_window,
    resolve_window,
    run_hybrid_sharded,
)
from repro.pdes.worker import FLOW_PORT_BASE
from repro.topology.clos import ClosParams, build_clos
from repro.topology.partition import cluster_of, partition_hybrid

EXPERIMENT = ExperimentConfig(
    clos=ClosParams(clusters=3), load=0.25, duration_s=0.002, seed=7
)
#: Elision off so remote traffic (and hence cross-shard model egress)
#: actually exercises the exchange machinery.
HYBRID = HybridConfig(elide_remote_traffic=False)


@pytest.fixture(scope="module")
def single_process_signature(trained_bundle):
    """Canonical outcome of the unsharded hybrid run (float64)."""
    result, _ = run_hybrid_simulation(EXPERIMENT, trained_bundle, hybrid=HYBRID)
    return outcome_signature(
        result.fcts, result.rtt_samples, result.drops, result.flows_completed
    )


# ----------------------------------------------------------------------
# Byte identity (the ISSUE's foregrounded deliverable)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_outcome_identical_to_single_process(
    trained_bundle, single_process_signature, workers
):
    result = run_hybrid_sharded(
        EXPERIMENT,
        trained_bundle,
        shard=HybridShardConfig(workers=workers),
        hybrid=HYBRID,
    )
    assert result.outcome_signature() == single_process_signature
    assert result.flows_completed > 0
    assert result.lookahead_violations == 0
    assert result.invariant_violations == 0
    if workers > 1:
        assert result.exchanges > 0


def test_batched_inference_outcome_identical(trained_bundle):
    """Per-shard InferenceBatcher flush grouping must not change outcomes."""
    hybrid = HybridConfig(elide_remote_traffic=False, batch_window_s=5e-7)
    result, _ = run_hybrid_simulation(EXPERIMENT, trained_bundle, hybrid=hybrid)
    expected = outcome_signature(
        result.fcts, result.rtt_samples, result.drops, result.flows_completed
    )
    sharded = run_hybrid_sharded(
        EXPERIMENT,
        trained_bundle,
        shard=HybridShardConfig(workers=2),
        hybrid=hybrid,
    )
    assert sharded.outcome_signature() == expected
    assert sharded.lookahead_violations == 0
    # Batching shrank the safe window below the physical cut delay.
    assert sharded.window_s == pytest.approx(MIN_REGION_LATENCY_S - 5e-7)


def test_model_ref_resolves_from_saved_bundle(
    tmp_path, trained_bundle, single_process_signature
):
    """Workers load the model from a path reference, never a pickle."""
    bundle_dir = tmp_path / "bundle"
    trained_bundle.save(bundle_dir)
    ref = ModelRef(path=str(bundle_dir))
    result = run_hybrid_sharded(
        EXPERIMENT, ref, shard=HybridShardConfig(workers=2), hybrid=HYBRID
    )
    assert result.outcome_signature() == single_process_signature


def test_single_black_box_rejected(trained_bundle):
    with pytest.raises(ValueError, match="single_black_box"):
        run_hybrid_sharded(
            EXPERIMENT,
            trained_bundle,
            shard=HybridShardConfig(workers=2),
            hybrid=HybridConfig(
                elide_remote_traffic=False, single_black_box=True
            ),
        )


# ----------------------------------------------------------------------
# Window validation: reject, never clamp (satellite 1)
# ----------------------------------------------------------------------
def _partitioned(workers=2, hybrid=HYBRID):
    topology = build_clos(EXPERIMENT.clos)
    partitions = partition_hybrid(topology, hybrid.full_cluster, workers)
    return topology, partitions


def _pdes_config(window_s=None):
    return PdesConfig(
        workers=2, duration_s=EXPERIMENT.duration_s, window_s=window_s, seed=1
    )


def test_oversized_window_rejected_by_cut_link_delay():
    topology, partitions = _partitioned()
    with pytest.raises(ValueError, match="minimum cut-link delay"):
        resolve_window(topology, partitions, _pdes_config(window_s=1.0))


def test_oversized_window_rejected_by_model_lookahead():
    """Batching changes the effective cut: the model-egress lookahead
    (MIN_REGION_LATENCY_S - batch_window_s) binds below the physical
    cut-link delay, and the error message must name that limiter."""
    hybrid = HybridConfig(
        elide_remote_traffic=False, batch_window_s=MIN_REGION_LATENCY_S / 2
    )
    topology, partitions = _partitioned(hybrid=hybrid)
    with pytest.raises(ValueError, match="hybrid model-egress lookahead"):
        resolve_hybrid_window(
            topology,
            partitions,
            _pdes_config(window_s=MIN_REGION_LATENCY_S * 0.9),
            hybrid,
        )


def test_batching_consuming_entire_margin_rejected():
    hybrid = HybridConfig(
        elide_remote_traffic=False, batch_window_s=MIN_REGION_LATENCY_S
    )
    assert model_egress_lookahead(hybrid) == 0.0
    topology, partitions = _partitioned(hybrid=hybrid)
    with pytest.raises(ValueError, match="no safe synchronization window"):
        resolve_hybrid_window(topology, partitions, _pdes_config(), hybrid)


def test_default_window_respects_tighter_bound():
    hybrid = HybridConfig(elide_remote_traffic=False, batch_window_s=4e-7)
    topology, partitions = _partitioned(hybrid=hybrid)
    window = resolve_hybrid_window(topology, partitions, _pdes_config(), hybrid)
    assert window == pytest.approx(MIN_REGION_LATENCY_S - 4e-7)
    # An explicit window at the bound is accepted; just above is not.
    assert (
        resolve_hybrid_window(
            topology, partitions, _pdes_config(window_s=window), hybrid
        )
        == window
    )
    with pytest.raises(ValueError, match="exceeds"):
        resolve_hybrid_window(
            topology, partitions, _pdes_config(window_s=window * 1.25), hybrid
        )


def test_single_worker_has_no_model_bound():
    """A 1-worker shard has no cut to cross; the window falls back to
    the run duration and batching imposes no constraint."""
    topology, partitions = _partitioned(workers=1)
    hybrid = HybridConfig(
        elide_remote_traffic=False, batch_window_s=MIN_REGION_LATENCY_S
    )
    window = resolve_hybrid_window(topology, partitions, _pdes_config(), hybrid)
    assert window == EXPERIMENT.duration_s


# ----------------------------------------------------------------------
# Flow-schedule extraction
# ----------------------------------------------------------------------
def test_sharded_failures_match_single_process(trained_bundle):
    """Every worker applies the same failure schedule at the same sim
    times against its own routing copy; the merged outcome must equal
    the unsharded run under the identical schedule."""
    from dataclasses import replace

    config = replace(
        EXPERIMENT, failures=[(0.0008, "core-0", "agg-c0-0")]
    )
    single, _ = run_hybrid_simulation(config, trained_bundle, hybrid=HYBRID)
    sharded = run_hybrid_sharded(
        config,
        trained_bundle,
        shard=HybridShardConfig(workers=2),
        hybrid=HYBRID,
    )
    assert sharded.outcome_signature() == outcome_signature(
        single.fcts, single.rtt_samples, single.drops, single.flows_completed
    )
    assert single.failure_events and single.failure_events[0]["changed"]


def test_collective_workload_rejected(trained_bundle):
    """Gated collective sends depend on cross-worker completions, so
    sharded runs refuse them up front with an actionable message."""
    from dataclasses import replace

    config = replace(
        EXPERIMENT, collective={"algorithm": "ring", "ranks": 4}
    )
    with pytest.raises(ValueError, match="collective"):
        run_hybrid_sharded(
            config,
            trained_bundle,
            shard=HybridShardConfig(workers=2),
            hybrid=HYBRID,
        )


def test_flow_schedule_ignores_collective():
    """Schedule extraction strips the collective (its chunks launch via
    completion gating, not arrivals) without perturbing the background
    mice schedule."""
    from dataclasses import replace

    topology = build_clos(EXPERIMENT.clos)
    baseline = extract_flow_schedule(topology, EXPERIMENT, HYBRID)
    with_collective = extract_flow_schedule(
        topology,
        replace(EXPERIMENT, collective={"algorithm": "ring", "ranks": 4}),
        HYBRID,
    )
    assert with_collective == baseline


def test_flow_schedule_deterministic_with_replicated_ports():
    topology = build_clos(EXPERIMENT.clos)
    first = extract_flow_schedule(topology, EXPERIMENT, HYBRID)
    again = extract_flow_schedule(topology, EXPERIMENT, HYBRID)
    assert first == again
    assert first, "schedule must not be empty at this load"
    # Ports replicate Host.open_flow: one counter per source host,
    # allocated in schedule order.
    next_port: dict[str, int] = {}
    for flow in first:
        expected = next_port.get(flow.src, FLOW_PORT_BASE)
        assert flow.src_port == expected
        next_port[flow.src] = expected + 1
    assert all(0.0 <= f.start_time <= EXPERIMENT.duration_s for f in first)
    assert all(f.size_bytes >= 1 for f in first)


def test_flow_schedule_elision_is_a_filter_not_a_reseed():
    """Eliding remote traffic must drop flows without perturbing the
    RNG draws of the ones that remain (same src/dst/size/start)."""
    topology = build_clos(EXPERIMENT.clos)
    kept_all = extract_flow_schedule(topology, EXPERIMENT, HYBRID)
    elided = extract_flow_schedule(
        topology, EXPERIMENT, HybridConfig(elide_remote_traffic=True)
    )
    assert len(elided) < len(kept_all)
    full = HYBRID.full_cluster
    for flow in elided:
        assert (
            cluster_of(topology, flow.src) == full
            or cluster_of(topology, flow.dst) == full
        )
    def key(flow):
        return (flow.src, flow.dst, flow.size_bytes, flow.start_time)

    assert {key(f) for f in elided} <= {key(f) for f in kept_all}
