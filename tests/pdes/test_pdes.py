"""Tests for the conservative parallel DES engine.

The key correctness property: a parallel run completes the same flows
as the single-threaded run of the identical workload (conservative
synchronization never violates causality, so the simulated world is
the same up to event-tie ordering differences at partition seams).
"""

from __future__ import annotations

import pytest

from repro.flowsim.simulator import FlowSpec
from repro.flowsim.workload import generate_workload
from repro.pdes.engine import PdesConfig, run_parallel_simulation, run_single_threaded
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.traffic.distributions import EmpiricalSizeDistribution, UNIFORM_SMALL_CDF


def _small_workload(topo, duration=0.004, load=0.2, seed=3):
    return generate_workload(
        topo,
        duration_s=duration,
        load=load,
        sizes=EmpiricalSizeDistribution(UNIFORM_SMALL_CDF),
        seed=seed,
    )


@pytest.fixture(scope="module")
def leafspine():
    return build_leaf_spine(LeafSpineParams(tors=4, spines=4, servers_per_tor=2))


class TestSingleThreaded:
    def test_flows_complete(self, leafspine):
        flows = _small_workload(leafspine)
        result = run_single_threaded(leafspine, flows, duration_s=0.02)
        assert result.flows_completed > 0
        assert result.flows_completed <= len(flows)
        assert result.events_executed > 0
        assert result.sim_seconds_per_second > 0

    def test_all_flows_complete_with_headroom(self, leafspine):
        flows = _small_workload(leafspine, duration=0.002, load=0.1)
        result = run_single_threaded(leafspine, flows, duration_s=1.0)
        assert result.flows_completed == len(flows)


class TestParallel:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_matches_single_thread_flow_completions(self, leafspine, workers):
        flows = _small_workload(leafspine, duration=0.002, load=0.15)
        single = run_single_threaded(leafspine, flows, duration_s=0.5)
        parallel = run_parallel_simulation(
            leafspine, flows, PdesConfig(workers=workers, duration_s=0.5)
        )
        assert parallel.flows_completed == single.flows_completed == len(flows)

    def test_cross_partition_messages_flow(self, leafspine):
        flows = _small_workload(leafspine, duration=0.002)
        result = run_parallel_simulation(
            leafspine, flows, PdesConfig(workers=2, duration_s=0.02)
        )
        assert result.cross_partition_messages > 0
        assert result.cut_links > 0

    def test_one_worker_degenerate_case(self, leafspine):
        flows = _small_workload(leafspine, duration=0.001, load=0.1)
        result = run_parallel_simulation(
            leafspine, flows, PdesConfig(workers=1, duration_s=0.3)
        )
        assert result.flows_completed == len(flows)
        assert result.cross_partition_messages == 0

    def test_rtt_and_fct_stats_collected(self, leafspine):
        flows = _small_workload(leafspine, duration=0.003)
        result = run_parallel_simulation(
            leafspine, flows, PdesConfig(workers=2, duration_s=0.5)
        )
        assert len(result.fcts) == result.flows_completed
        assert all(f > 0 for f in result.fcts)
        assert len(result.rtt_samples) > 0

    def test_window_exceeding_lookahead_rejected(self, leafspine):
        flows = _small_workload(leafspine, duration=0.001)
        with pytest.raises(ValueError):
            run_parallel_simulation(
                leafspine,
                flows,
                PdesConfig(workers=2, duration_s=0.01, window_s=1.0),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PdesConfig(workers=0)
        with pytest.raises(ValueError):
            PdesConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            PdesConfig(window_s=-1.0)
