"""Determinism of the parallel engine.

Conservative synchronous-window PDES must be *reproducible*: the
window protocol fixes which events execute in which window regardless
of OS scheduling, so two identical parallel runs produce identical
simulated outcomes — the property that separates a correct
conservative engine from a racy one.
"""

from __future__ import annotations

import pytest

from repro.flowsim.workload import generate_workload
from repro.pdes.engine import PdesConfig, run_parallel_simulation
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.traffic.distributions import EmpiricalSizeDistribution, UNIFORM_SMALL_CDF


@pytest.fixture(scope="module")
def world():
    topo = build_leaf_spine(LeafSpineParams(tors=4, spines=2, servers_per_tor=2))
    flows = generate_workload(
        topo, duration_s=0.002, load=0.15,
        sizes=EmpiricalSizeDistribution(UNIFORM_SMALL_CDF), seed=131,
    )
    return topo, flows


def test_parallel_run_reproducible(world):
    topo, flows = world
    config = PdesConfig(workers=2, duration_s=0.3, seed=131)
    first = run_parallel_simulation(topo, flows, config)
    second = run_parallel_simulation(topo, flows, config)
    assert first.flows_completed == second.flows_completed
    assert first.drops == second.drops
    assert first.events_executed == second.events_executed
    assert sorted(first.fcts) == sorted(second.fcts)
    assert sorted(first.rtt_samples) == sorted(second.rtt_samples)


def test_parallel_matches_single_thread_outcomes(world):
    """The same physical world: identical flow completion times up to
    float tolerance (event *order* at window seams differs, but
    conservative causality means packet timings do not)."""
    from repro.pdes.engine import run_single_threaded

    topo, flows = world
    single = run_single_threaded(topo, flows, duration_s=0.3, seed=131)
    parallel = run_parallel_simulation(
        topo, flows, PdesConfig(workers=2, duration_s=0.3, seed=131)
    )
    assert single.flows_completed == parallel.flows_completed == len(flows)
    for a, b in zip(sorted(single.fcts), sorted(parallel.fcts)):
        assert a == pytest.approx(b, rel=1e-9)
