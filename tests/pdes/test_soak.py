"""Soak test: 4-worker sharded hybrid at paper scale (32 clusters).

Runs only when ``REPRO_SOAK=1`` (CI wires it as a separate,
non-blocking job).  Asserts the run finishes inside a wall-clock
budget with zero invariant and zero lookahead violations, and writes
the merged per-worker metrics as a JSON artifact for CI upload
(``REPRO_SOAK_ARTIFACT`` overrides the destination).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.hybrid import HybridConfig
from repro.core.pipeline import ExperimentConfig
from repro.pdes import HybridShardConfig, run_hybrid_sharded
from repro.topology.clos import ClosParams

pytestmark = [
    pytest.mark.soak,
    pytest.mark.skipif(
        os.environ.get("REPRO_SOAK") != "1",
        reason="soak tests run only with REPRO_SOAK=1",
    ),
]

WALL_BUDGET_S = float(os.environ.get("REPRO_SOAK_BUDGET_S", "900"))


def test_four_worker_32_cluster_soak(trained_bundle, tmp_path):
    config = ExperimentConfig(
        clos=ClosParams(clusters=32), load=0.25, duration_s=0.002, seed=13
    )
    started = time.monotonic()
    result = run_hybrid_sharded(
        config,
        trained_bundle,
        shard=HybridShardConfig(workers=4, metrics=True),
        hybrid=HybridConfig(elide_remote_traffic=False),
    )
    elapsed = time.monotonic() - started
    assert elapsed < WALL_BUDGET_S, f"soak blew the budget: {elapsed:.1f}s"
    assert result.invariant_violations == 0
    assert result.lookahead_violations == 0
    assert result.exchanges > 0
    assert result.flows_completed > 0
    artifact = Path(
        os.environ.get("REPRO_SOAK_ARTIFACT", tmp_path / "soak_metrics.json")
    )
    artifact.parent.mkdir(parents=True, exist_ok=True)
    artifact.write_text(
        json.dumps(
            {
                "wallclock_seconds": result.wallclock_seconds,
                "events_executed": result.events_executed,
                "merged": result.merged_counters(),
                "hot_path": result.merged_hot_path_counters(
                    result.wallclock_seconds
                ),
            },
            indent=1,
            sort_keys=True,
        )
    )
