"""Tracing matrix for the sharded hybrid: observe everything, perturb nothing.

Satellite 3 of the tracing PR plus the tentpole's integration test:

* the determinism matrix — ``outcome_signature`` must be byte-identical
  with tracing off, on, and on-with-ring-overflow, across 1/2/4 PDES
  workers (a flight recorder draws no randomness and schedules no
  events, so this holds by construction; the matrix pins it);
* cross-worker causality — a 2-worker merged trace must show one flow's
  records on both workers' tracks, with every cut-link ``exchange.send``
  stamped no later in sim time than its window's ``exchange.recv``;
* crash forensics — a dying worker's last window of records rides the
  structured crash payload into ``WorkerCrashError`` and the run
  manifest.
"""

from __future__ import annotations

import json

import pytest

from repro.core.hybrid import HybridConfig
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig
from repro.obs.trace import CHROME_REQUIRED_KEYS, read_trace_jsonl, to_chrome_trace
from repro.pdes import HybridShardConfig, WorkerCrashError, run_hybrid_sharded
from repro.runs.executor import execute_run
from repro.runs.spec import RunRequest
from repro.topology.clos import ClosParams

HYBRID = HybridConfig(elide_remote_traffic=False)


def _experiment(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        clos=ClosParams(clusters=3), load=0.25, duration_s=0.0015, seed=seed
    )


def _run(trained_bundle, workers: int, **shard_kwargs):
    return run_hybrid_sharded(
        _experiment(3),
        trained_bundle,
        shard=HybridShardConfig(workers=workers, **shard_kwargs),
        hybrid=HYBRID,
    )


# ----------------------------------------------------------------------
# Determinism matrix: trace off / on / on-with-overflow x 1/2/4 workers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_tracing_does_not_perturb_outcomes(trained_bundle, workers):
    off = _run(trained_bundle, workers)
    on = _run(trained_bundle, workers, trace=True)
    # A deliberately tiny ring: constant eviction pressure must not
    # change outcomes either (eviction is a deque pop, not an event).
    overflow = _run(trained_bundle, workers, trace=True, trace_capacity=16)
    assert (
        off.outcome_signature()
        == on.outcome_signature()
        == overflow.outcome_signature()
    )
    assert (
        off.determinism_signature()
        == on.determinism_signature()
        == overflow.determinism_signature()
    )
    assert all(s.trace_events is None for s in off.worker_stats)
    assert all(s.trace_events is not None for s in on.worker_stats)
    assert on.trace_recorded > 0
    assert overflow.trace_recorded == on.trace_recorded
    assert overflow.trace_evicted > 0
    assert all(
        len(s.trace_events) <= 16 for s in overflow.worker_stats
    )


def test_traced_reruns_are_byte_identical(trained_bundle):
    first = _run(trained_bundle, 2, trace=True)
    again = _run(trained_bundle, 2, trace=True)
    assert json.dumps(first.merged_trace(), sort_keys=True) == json.dumps(
        again.merged_trace(), sort_keys=True
    )


def test_trace_capacity_validated():
    with pytest.raises(ValueError, match="trace_capacity"):
        HybridShardConfig(trace_capacity=0)


# ----------------------------------------------------------------------
# Tentpole integration: one flow across two workers, causally ordered
# ----------------------------------------------------------------------
def test_merged_trace_spans_worker_tracks_causally(trained_bundle):
    result = _run(trained_bundle, 2, trace=True)
    merged = result.merged_trace()
    assert merged, "traced 2-worker run produced no records"
    # Merge order is (t0, worker, seq) — non-decreasing sim time.
    times = [r["t0"] for r in merged]
    assert times == sorted(times)
    # At least one flow left records on both workers' tracks.
    tracks: dict[str, set] = {}
    for record in merged:
        if record["trace"]:
            tracks.setdefault(record["trace"], set()).add(record["worker"])
    cross = {t for t, workers in tracks.items() if len(workers) == 2}
    assert cross, "no flow was traced on both workers"
    # Cut-link causality: within one (trace, window), every send was
    # stamped at the window barrier, no later than any delivery.
    sends: dict[tuple, list] = {}
    recvs = []
    for record in merged:
        key = (record["trace"], record["args"].get("window"))
        if record["name"] == "exchange.send":
            sends.setdefault(key, []).append(record)
        elif record["name"] == "exchange.recv":
            recvs.append((key, record))
    assert sends and recvs, "2-worker run produced no exchange records"
    paired = 0
    for key, recv in recvs:
        for send in sends.get(key, ()):
            assert send["t0"] <= recv["t0"] + 1e-12
            paired += 1
    assert paired > 0, "no exchange.recv paired with its send"
    # The merged trace exports to valid Chrome trace-event JSON.
    doc = json.loads(json.dumps(to_chrome_trace(merged)))
    assert doc["traceEvents"]
    for event in doc["traceEvents"]:
        for required in CHROME_REQUIRED_KEYS:
            assert required in event
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {0, 1}  # one Chrome process track per worker


# ----------------------------------------------------------------------
# Crash forensics: the flight recorder's tail survives the worker
# ----------------------------------------------------------------------
def test_worker_crash_carries_trace_tail(trained_bundle):
    with pytest.raises(WorkerCrashError) as exc_info:
        _run(trained_bundle, 2, trace=True, inject_crash=1)
    error = exc_info.value
    assert error.worker_index == 1
    assert error.trace_tail, "crash payload lost the flight-recorder tail"
    assert all(record["worker"] == 1 for record in error.trace_tail)


def _request(run_id: str, hybrid: dict) -> RunRequest:
    return RunRequest(
        run_id=run_id,
        index=0,
        spec_name="trace",
        stage="pdes-hybrid",
        axes={},
        seed_master=9,
        seed_derived=9,
        experiment=ExperimentConfig(
            clos=ClosParams(clusters=3), load=0.25, duration_s=0.0015, seed=9
        ),
        training=ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=7
        ),
        micro=MicroModelConfig(
            hidden_size=8, num_layers=1, window=8, train_batches=5
        ),
        hybrid=hybrid,
    )


def test_executor_writes_merged_trace_artifact(tmp_path):
    manifest = execute_run(
        _request(
            "trace-0000",
            {"workers": 2, "trace": True, "elide_remote_traffic": False},
        ),
        str(tmp_path / "runs"),
        str(tmp_path / "models"),
        attempt=1,
    )
    assert manifest["status"] == "completed"
    assert manifest["result"]["pdes"]["trace"]["recorded"] > 0
    trace_path = manifest["artifacts"]["trace"]
    meta, records = read_trace_jsonl(trace_path)
    assert meta["workers"] == 2 and meta["seed"] == 9
    assert records and {r["worker"] for r in records} <= {0, 1}


def test_crash_manifest_carries_trace_tail(tmp_path):
    manifest = execute_run(
        _request(
            "trace-crash-0000",
            {
                "workers": 2,
                "trace": True,
                "inject_crash": 0,
                "elide_remote_traffic": False,
            },
        ),
        str(tmp_path / "runs"),
        str(tmp_path / "models"),
        attempt=1,
    )
    assert manifest["status"] == "failed"
    assert manifest["error"]["type"] == "WorkerCrashError"
    tail = manifest["error"]["trace_tail"]
    assert tail and all(record["worker"] == 0 for record in tail)
