"""CLI surface of the runs subsystem (in-process, via main())."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runs import RunStore

SPEC = {
    "name": "cli-sweep",
    "stage": "hybrid",
    "experiment": {"clusters": 2, "load": 0.25, "duration_s": 0.002, "seed": 9},
    "training": {"clusters": 2, "load": 0.25, "duration_s": 0.004, "seed": 7},
    "micro": {
        "hidden_size": 8, "num_layers": 1, "window": 8,
        "train_batches": 4, "learning_rate": 3e-3,
    },
    "sweep": {"load": [0.15, 0.25]},
}


@pytest.fixture(scope="module")
def submitted_sweep(tmp_path_factory):
    """One tiny hybrid sweep submitted through the CLI, shared below."""
    root = tmp_path_factory.mktemp("cli-runs")
    spec_path = root / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    out = root / "out"
    code = main([
        "runs", "submit", "--spec", str(spec_path), "--out", str(out),
        "--workers", "0", "--retries", "0",
    ])
    assert code == 0
    return out


class TestSubmit:
    def test_manifests_and_cache_hit(self, submitted_sweep, capsys):
        store = RunStore(submitted_sweep)
        manifests = store.manifests()
        assert [m.status for m in manifests] == ["completed", "completed"]
        assert manifests[0].model["cache_hit"] is False
        assert manifests[1].model["cache_hit"] is True

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        code = main(["runs", "submit", "--spec", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load spec" in capsys.readouterr().err

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "stage": "bogus"}))
        assert main(["runs", "submit", "--spec", str(bad)]) == 2
        assert "cannot load spec" in capsys.readouterr().err


class TestStatusAndShow:
    def test_status_lists_runs(self, submitted_sweep, capsys):
        assert main(["runs", "status", "--out", str(submitted_sweep)]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep-0000" in out and "cli-sweep-0001" in out
        assert "completed: 2" in out
        assert "hit" in out and "miss" in out

    def test_status_filter(self, submitted_sweep, capsys):
        assert main([
            "runs", "status", "--out", str(submitted_sweep), "--status", "failed",
        ]) == 0
        assert "no run manifests" in capsys.readouterr().out

    def test_show_prints_manifest(self, submitted_sweep, capsys):
        assert main([
            "runs", "show", "cli-sweep-0001", "--out", str(submitted_sweep),
        ]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["config_hash"]
        assert manifest["model"]["cache_hit"] is True
        assert manifest["hot_path_counters"]["model_packets"] >= 0

    def test_show_unknown_run_exits_2(self, submitted_sweep, capsys):
        assert main([
            "runs", "show", "cli-sweep-9999", "--out", str(submitted_sweep),
        ]) == 2

    def test_empty_dir_status(self, tmp_path, capsys):
        assert main(["runs", "status", "--out", str(tmp_path)]) == 0
        assert "no run manifests" in capsys.readouterr().out


class TestCompare:
    def test_store_compare_surfaces_load_delta(self, submitted_sweep):
        store = RunStore(submitted_sweep)
        diff = store.compare("cli-sweep-0000", "cli-sweep-0001")
        assert diff["config"]["load"] == {"a": 0.15, "b": 0.25}
        assert "events_executed" in diff["metrics"]


class TestModels:
    def test_ls_and_gc(self, submitted_sweep, capsys):
        registry = submitted_sweep / "models"
        assert main(["models", "ls", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "lstm h8x1" in out

        assert main([
            "models", "gc", "--registry", str(registry), "--keep", "0", "--dry-run",
        ]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert main([
            "models", "gc", "--registry", str(registry), "--keep", "0",
        ]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["models", "ls", "--registry", str(registry)]) == 0
        assert "no models" in capsys.readouterr().out
