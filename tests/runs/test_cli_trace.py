"""CLI surface of the tracing subsystem (in-process, via main()).

One traced 2-worker pdes-hybrid run submitted through ``repro runs
submit`` feeds every command under test: ``repro trace show / export /
top`` read the merged ``trace.jsonl`` the executor wrote next to the
manifest, and ``repro obs show`` renders the per-worker shard table
(satellite 1).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.trace import CHROME_REQUIRED_KEYS

SPEC = {
    "name": "cli-trace",
    "stage": "pdes-hybrid",
    "experiment": {"clusters": 3, "load": 0.25, "duration_s": 0.0015, "seed": 9},
    "hybrid": {"workers": 2, "trace": True, "elide_remote_traffic": False},
    "training": {"clusters": 2, "load": 0.25, "duration_s": 0.004, "seed": 7},
    "micro": {
        "hidden_size": 8, "num_layers": 1, "window": 8,
        "train_batches": 4, "learning_rate": 3e-3,
    },
}


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced sharded run; returns its run directory."""
    root = tmp_path_factory.mktemp("cli-trace")
    spec_path = root / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    out = root / "out"
    code = main([
        "runs", "submit", "--spec", str(spec_path), "--out", str(out),
        "--workers", "0", "--retries", "0",
    ])
    assert code == 0
    run_dir = out / "cli-trace-0000"
    assert (run_dir / "trace.jsonl").exists()
    return run_dir


class TestTraceShow:
    def test_show_by_flow_id(self, traced_run, capsys):
        assert main(["trace", "show", str(traced_run), "0"]) == 0
        out = capsys.readouterr().out
        assert "records ==" in out
        assert "flow.admit" in out

    def test_show_accepts_manifest_or_jsonl_path(self, traced_run, capsys):
        assert main([
            "trace", "show", str(traced_run / "manifest.json"), "0",
        ]) == 0
        assert main([
            "trace", "show", str(traced_run / "trace.jsonl"), "0",
        ]) == 0

    def test_show_unknown_flow_exits_1(self, traced_run, capsys):
        assert main(["trace", "show", str(traced_run), "99999"]) == 1
        assert "no trace records" in capsys.readouterr().out

    def test_show_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["trace", "show", str(tmp_path), "0"]) == 2


class TestTraceExport:
    def test_chrome_export_is_loadable(self, traced_run, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main([
            "trace", "export", str(traced_run),
            "--format", "chrome", "--out", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            for key in CHROME_REQUIRED_KEYS:
                assert key in event
        # Both workers appear as Chrome process tracks.
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}

    def test_export_to_stdout(self, traced_run, capsys):
        assert main(["trace", "export", str(traced_run)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]


class TestTraceTop:
    def test_top_by_duration(self, traced_run, capsys):
        assert main(["trace", "top", str(traced_run), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "duration" in out

    def test_top_by_count(self, traced_run, capsys):
        assert main(["trace", "top", str(traced_run), "--by", "count"]) == 0
        out = capsys.readouterr().out
        assert "exchange.send" in out


class TestObsShowShards:
    def test_per_worker_table_rendered(self, traced_run, capsys):
        assert main(["obs", "show", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "pdes shards" in out
        assert "2 workers" in out
        assert "trace:" in out
