"""Model registry: fingerprints, round-trips, cache hits, gc."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.features import FEATURE_COUNT, Direction
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig, train_reusable_model
from repro.runs import ModelRegistry, model_fingerprint
from repro.topology.clos import ClosParams

TRAIN_CONFIG = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=7
)
MICRO = MicroModelConfig(
    hidden_size=8, num_layers=1, window=8, train_batches=5, learning_rate=3e-3
)


@pytest.fixture(scope="module")
def tiny_model():
    trained, _ = train_reusable_model(TRAIN_CONFIG, micro=MICRO)
    return trained


class TestFingerprint:
    def test_stable(self):
        assert model_fingerprint(TRAIN_CONFIG, MICRO) == model_fingerprint(
            TRAIN_CONFIG, MICRO
        )

    def test_sensitive_to_inputs(self):
        base = model_fingerprint(TRAIN_CONFIG, MICRO)
        assert model_fingerprint(TRAIN_CONFIG, replace(MICRO, alpha=0.9)) != base
        assert model_fingerprint(replace(TRAIN_CONFIG, seed=8), MICRO) != base
        bigger = replace(TRAIN_CONFIG, clos=ClosParams(clusters=4))
        assert model_fingerprint(bigger, MICRO) != base

    def test_sensitive_to_package_version(self):
        assert model_fingerprint(TRAIN_CONFIG, MICRO) != model_fingerprint(
            TRAIN_CONFIG, MICRO, package_version="0.0.0-other"
        )


class TestRoundTrip:
    def test_stored_model_predicts_identically(self, tmp_path, tiny_model):
        registry = ModelRegistry(tmp_path)
        fingerprint = model_fingerprint(TRAIN_CONFIG, MICRO)
        registry.store(fingerprint, tiny_model)
        assert registry.contains(fingerprint)
        loaded = registry.load(fingerprint)

        rng = np.random.default_rng(0)
        features = rng.normal(size=(32, FEATURE_COUNT))
        for direction in (Direction.INGRESS, Direction.EGRESS):
            original = tiny_model.compiled().engine(direction)
            restored = loaded.compiled().engine(direction)
            for row in features:
                assert original.predict(row) == restored.predict(row)

    def test_get_or_train_caches(self, tmp_path, tiny_model):
        registry = ModelRegistry(tmp_path / "reg")
        calls = 0

        def train_fn():
            nonlocal calls
            calls += 1
            return tiny_model

        first = registry.get_or_train(TRAIN_CONFIG, MICRO, train_fn=train_fn)
        second = registry.get_or_train(TRAIN_CONFIG, MICRO, train_fn=train_fn)
        assert calls == 1
        assert not first.cache_hit and second.cache_hit
        assert first.fingerprint == second.fingerprint
        assert second.train_wallclock_s == 0.0

    def test_store_is_idempotent(self, tmp_path, tiny_model):
        registry = ModelRegistry(tmp_path)
        fingerprint = "feedfacefeedface"
        path_a = registry.store(fingerprint, tiny_model)
        path_b = registry.store(fingerprint, tiny_model)
        assert path_a == path_b
        assert registry.contains(fingerprint)
        assert not any(p.name.startswith(".tmp") for p in registry.root.iterdir())


class TestEntriesAndGc:
    def test_gc_keeps_most_recently_used(self, tmp_path, tiny_model):
        registry = ModelRegistry(tmp_path)
        for fingerprint in ("aaa", "bbb", "ccc"):
            registry.store(fingerprint, tiny_model, inputs={"micro": {"cell": "lstm"}})
        registry.load("bbb")  # bump last_used
        victims = registry.gc(keep=1, dry_run=True)
        assert {v.fingerprint for v in victims} == {"aaa", "ccc"}
        assert len(registry.entries()) == 3  # dry run removed nothing
        registry.gc(keep=1)
        assert [e.fingerprint for e in registry.entries()] == ["bbb"]

    def test_gc_rejects_negative_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            ModelRegistry(tmp_path).gc(keep=-1)

    def test_entries_report_size_and_inputs(self, tmp_path, tiny_model):
        registry = ModelRegistry(tmp_path)
        registry.store("abc", tiny_model, inputs={"micro": {"hidden_size": 8}})
        (entry,) = registry.entries()
        assert entry.fingerprint == "abc"
        assert entry.size_bytes > 0
        assert entry.inputs["micro"]["hidden_size"] == 8


class TestVersionInvalidation:
    """The package version participates in the fingerprint: a release
    that changes feature semantics (e.g. the path_agg normalizer fix)
    must miss every cache entry trained under the old semantics."""

    def test_current_version_is_not_the_seed_version(self):
        import repro

        assert repro.__version__ != "1.0.0"

    def test_fingerprint_changes_across_versions(self):
        current = model_fingerprint(TRAIN_CONFIG, MICRO)
        pre_fix = model_fingerprint(TRAIN_CONFIG, MICRO, package_version="1.0.0")
        assert current != pre_fix

    def test_stale_model_is_a_cache_miss(self, tmp_path, tiny_model):
        registry = ModelRegistry(tmp_path / "reg")
        stale = model_fingerprint(TRAIN_CONFIG, MICRO, package_version="1.0.0")
        registry.store(stale, tiny_model)

        calls = 0

        def train_fn():
            nonlocal calls
            calls += 1
            return tiny_model

        lookup = registry.get_or_train(TRAIN_CONFIG, MICRO, train_fn=train_fn)
        assert calls == 1  # the pre-fix artifact was not served
        assert not lookup.cache_hit
        assert lookup.fingerprint != stale
        assert registry.contains(stale) and registry.contains(lookup.fingerprint)
