"""Sweep scheduler: exactly-once training, retries, timeouts, determinism."""

from __future__ import annotations

import copy

import pytest

from repro.runs import RunStore, ScenarioSpec, SchedulerConfig, SweepScheduler

TINY_SIMULATE = {
    "name": "sched-sim",
    "stage": "simulate",
    "experiment": {"clusters": 2, "load": 0.15, "duration_s": 0.001, "seed": 3},
    "sweep": {"seed": [1, 2]},
}

TINY_HYBRID = {
    "name": "sched-hyb",
    "stage": "hybrid",
    "experiment": {"clusters": 2, "load": 0.25, "duration_s": 0.002, "seed": 9},
    "training": {"clusters": 2, "load": 0.25, "duration_s": 0.004, "seed": 7},
    "micro": {
        "hidden_size": 8, "num_layers": 1, "window": 8,
        "train_batches": 5, "learning_rate": 3e-3,
    },
    "sweep": {"load": [0.15, 0.25]},
}


def _submit(spec_dict, out_dir, **config):
    spec = ScenarioSpec.from_dict(copy.deepcopy(spec_dict))
    scheduler = SweepScheduler(
        spec, out_dir, config=SchedulerConfig(**config)
    )
    return scheduler.submit()


class TestHybridSweep:
    """The acceptance scenario: a 2-point load sweep trains exactly once."""

    def test_second_run_is_registry_cache_hit(self, tmp_path):
        manifests = _submit(TINY_HYBRID, tmp_path, workers=1, retries=0)
        assert [m.status for m in manifests] == ["completed", "completed"]
        assert manifests[0].model["cache_hit"] is False
        assert manifests[1].model["cache_hit"] is True
        assert manifests[0].model["fingerprint"] == manifests[1].model["fingerprint"]
        # Exactly one model trained for the whole sweep.
        assert len(list((tmp_path / "models").glob("*/bundle.json"))) == 1

    def test_parallel_workers_still_train_once(self, tmp_path):
        # Both runs need the same missing fingerprint; the second must
        # wait for the first's training rather than duplicate it.
        manifests = _submit(TINY_HYBRID, tmp_path, workers=2, retries=0)
        assert [m.status for m in manifests] == ["completed", "completed"]
        hits = sorted(m.model["cache_hit"] for m in manifests)
        assert hits == [False, True]
        assert len(list((tmp_path / "models").glob("*/bundle.json"))) == 1

    def test_manifest_contents(self, tmp_path):
        manifests = _submit(TINY_HYBRID, tmp_path, workers=0, retries=0)
        for manifest in manifests:
            assert manifest.config_hash
            assert manifest.seed_master >= 0 and manifest.seed_derived >= 0
            assert manifest.wallclock_seconds > 0
            assert manifest.hot_path_counters["model_packets"] >= 0
            assert "inference_seconds" in manifest.hot_path_counters
            assert manifest.versions["repro"]
            assert manifest.config["load"] == manifest.axes["load"]
            assert manifest.result["events_executed"] > 0
        # Durable on disk, discoverable through the store.
        store = RunStore(tmp_path)
        assert store.run_ids() == ["sched-hyb-0000", "sched-hyb-0001"]
        assert store.get("sched-hyb-0001").model["cache_hit"] is True


TINY_CASCADE = {
    "name": "sched-cas",
    "stage": "cascade",
    "experiment": {"clusters": 3, "load": 0.25, "duration_s": 0.003, "seed": 9},
    "hybrid": {
        "epoch_s": 0.001, "window_epochs": 2, "min_window_samples": 4,
        "budget": {"ks": 0.2},
    },
    "training": {"clusters": 2, "load": 0.25, "duration_s": 0.004, "seed": 7},
    "micro": {
        "hidden_size": 8, "num_layers": 1, "window": 8,
        "train_batches": 5, "learning_rate": 3e-3,
    },
}


class TestCascadeStage:
    def test_manifest_carries_tier_accounting_and_decision_log(self, tmp_path):
        (manifest,) = _submit(TINY_CASCADE, tmp_path, workers=0, retries=0)
        assert manifest.status == "completed"
        cascade = manifest.result["cascade"]
        assert cascade["epochs"] >= 2
        assert set(cascade["per_tier_packets"]) == {"flowsim", "hybrid", "des"}
        assert cascade["per_tier_packets"]["des"] > 0
        for residency in cascade["tier_residency"].values():
            assert sum(residency.values()) == cascade["epochs"]
        # The auditable decision log is a run-directory artifact.
        import json

        decisions_path = manifest.artifacts["decisions"]
        assert decisions_path.endswith("decisions.json")
        entries = json.loads(open(decisions_path).read())
        assert len(entries) == cascade["decisions"]
        # Hot-path counters come from the packet side as usual.
        assert manifest.hot_path_counters["model_packets"] > 0


class TestFailureHandling:
    def test_injected_failure_is_retried_then_succeeds(self, tmp_path):
        spec = copy.deepcopy(TINY_SIMULATE)
        spec["inject"] = {"0": {"fail_attempts": 1}}
        manifests = _submit(
            spec, tmp_path, workers=2, retries=2, backoff_s=0.05
        )
        assert manifests[0].status == "completed"
        assert manifests[0].attempts == 2
        assert manifests[1].status == "completed" and manifests[1].attempts == 1

    def test_persistent_failure_recorded_without_aborting_sweep(self, tmp_path):
        spec = copy.deepcopy(TINY_SIMULATE)
        spec["sweep"] = {"seed": [1, 2, 3]}
        spec["inject"] = {"1": {"fail_attempts": 99}}
        manifests = _submit(
            spec, tmp_path, workers=2, retries=1, backoff_s=0.05
        )
        assert [m.status for m in manifests] == ["completed", "failed", "completed"]
        failed = manifests[1]
        assert failed.attempts == 2  # first try + one retry
        assert failed.error["type"] == "RuntimeError"
        assert "injected failure" in failed.error["traceback"]
        # The failure is durably recorded, not just returned.
        assert RunStore(tmp_path).get(failed.run_id).status == "failed"

    def test_inline_mode_retries_too(self, tmp_path):
        spec = copy.deepcopy(TINY_SIMULATE)
        spec["inject"] = {"1": {"fail_attempts": 1}}
        manifests = _submit(
            spec, tmp_path, workers=0, retries=1, backoff_s=0.01
        )
        assert [m.status for m in manifests] == ["completed", "completed"]
        assert manifests[1].attempts == 2


class TestTimeouts:
    def test_hung_run_times_out_and_sweep_continues(self, tmp_path):
        spec = copy.deepcopy(TINY_SIMULATE)
        spec["inject"] = {"0": {"hang_s": 30.0}}
        manifests = _submit(
            spec, tmp_path, workers=1, retries=0, timeout_s=1.0, poll_s=0.02
        )
        assert manifests[0].status == "timeout"
        assert manifests[0].error["type"] == "TimeoutError"
        assert manifests[1].status == "completed"

    def test_timeout_requires_workers(self):
        with pytest.raises(ValueError, match="timeout_s requires workers"):
            SchedulerConfig(workers=0, timeout_s=1.0)


class TestDeterminism:
    def test_same_spec_same_manifests_modulo_timestamps(self, tmp_path):
        first = _submit(TINY_SIMULATE, tmp_path / "a", workers=0, retries=0)
        second = _submit(TINY_SIMULATE, tmp_path / "b", workers=0, retries=0)

        def comparable(manifest):
            data = manifest.to_dict()
            for key in ("started_at", "finished_at", "wallclock_seconds", "versions"):
                data.pop(key)
            for key in (
                "wallclock_seconds",
                "sim_seconds_per_second",
                "events_per_second",
                "model_inference_seconds",
                "inference_share",
            ):
                data["result"].pop(key)
            # Span timings are wall-clock by design; everything else in
            # the metrics snapshot (counters, gauges, probe samples and
            # their histograms) is a function of the seeded simulation
            # and must reproduce exactly.
            data["metrics"].pop("spans")
            # The JSONL artifact path embeds the (differing) out dir.
            data["artifacts"].pop("metrics")
            return data

        assert [comparable(m) for m in first] == [comparable(m) for m in second]
        # In particular: derived seeds, config hashes, and simulation
        # outcomes (event counts, drops, percentiles) are identical.
        assert [m.seed_derived for m in first] == [m.seed_derived for m in second]
        assert [m.config_hash for m in first] == [m.config_hash for m in second]
        assert [m.result["events_executed"] for m in first] == [
            m.result["events_executed"] for m in second
        ]


TINY_VALIDATE = {
    "name": "sched-val",
    "stage": "validate",
    "experiment": {"clusters": 2, "load": 0.25, "duration_s": 0.002, "seed": 9},
    "training": {"clusters": 2, "load": 0.25, "duration_s": 0.004, "seed": 7},
    "micro": {
        "hidden_size": 8, "num_layers": 1, "window": 8,
        "train_batches": 5, "learning_rate": 3e-3,
    },
}


class TestValidateStage:
    """The differential fidelity stage rides the same scheduler path."""

    def test_fidelity_embedded_in_manifest(self, tmp_path):
        manifests = _submit(TINY_VALIDATE, tmp_path, workers=0, retries=0)
        assert [m.status for m in manifests] == ["completed"]
        manifest = manifests[0]
        assert manifest.model is not None  # validate is a model stage
        fidelity = manifest.result["fidelity"]
        assert set(fidelity) == {
            "fct", "latency", "drop_rate", "throughput", "macro", "invariants"
        }
        assert fidelity["invariants"]["total"] == 0
        assert fidelity["latency"]["full_samples"] > 0
        assert fidelity["macro"]["buckets"] > 0
        assert manifest.result["full"]["events_executed"] > 0
        assert manifest.result["hybrid"]["events_executed"] > 0
        assert manifest.hot_path_counters["model_packets"] > 0
