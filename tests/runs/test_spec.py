"""ScenarioSpec parsing, validation, and deterministic expansion."""

from __future__ import annotations

import json

import pytest

from repro.runs import ScenarioSpec, derive_seed, load_spec
from repro.runs.spec import MODEL_STAGES


def _spec_dict(**overrides) -> dict:
    base = {
        "name": "demo",
        "stage": "simulate",
        "experiment": {"clusters": 2, "load": 0.2, "duration_s": 0.002, "seed": 5},
        "sweep": {"load": [0.1, 0.2], "seed": [1, 2]},
    }
    base.update(overrides)
    return base


class TestParsing:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_spec_dict()))
        spec = load_spec(path)
        assert spec.name == "demo"
        assert spec.experiment.load == 0.2
        assert spec.sweep == {"load": [0.1, 0.2], "seed": [1, 2]}

    def test_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "demo-toml"\n'
            'stage = "simulate"\n'
            "[experiment]\n"
            "clusters = 2\n"
            "load = 0.3\n"
            "duration_s = 0.001\n"
            "seed = 4\n"
            "[sweep]\n"
            "load = [0.1, 0.3]\n"
        )
        spec = load_spec(path)
        assert spec.name == "demo-toml"
        assert spec.experiment.clos.clusters == 2
        assert len(spec.expand()) == 2

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("{}")
        with pytest.raises(ValueError, match="json or .toml"):
            load_spec(path)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ScenarioSpec.from_dict(_spec_dict(bogus=1))
        with pytest.raises(ValueError, match="unknown experiment keys"):
            ScenarioSpec.from_dict(
                _spec_dict(experiment={"loda": 0.2})
            )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            ScenarioSpec.from_dict(_spec_dict(sweep={"bananas": [1]}))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty list"):
            ScenarioSpec.from_dict(_spec_dict(sweep={"load": []}))

    def test_bad_stage_rejected(self):
        with pytest.raises(ValueError, match="stage"):
            ScenarioSpec.from_dict(_spec_dict(stage="transmogrify"))

    def test_bad_config_values_fail_fast(self):
        with pytest.raises(ValueError, match="load must be > 0"):
            ScenarioSpec.from_dict(
                _spec_dict(experiment={"load": -1.0, "duration_s": 0.001})
            )

    def test_alpha_axis_requires_model_stage(self):
        with pytest.raises(ValueError, match="alpha"):
            ScenarioSpec.from_dict(_spec_dict(sweep={"alpha": [0.5]}))

    def test_model_stage_defaults(self):
        spec = ScenarioSpec.from_dict(_spec_dict(stage="hybrid", sweep={}))
        assert spec.stage in MODEL_STAGES
        assert spec.training is not None and spec.training.clos.clusters == 2
        assert spec.micro is not None


class TestExpansion:
    def test_cartesian_product_in_order(self):
        spec = ScenarioSpec.from_dict(_spec_dict())
        runs = spec.expand()
        # Axes sorted by name: load before seed; values in given order.
        assert [r.run_id for r in runs] == [f"demo-{i:04d}" for i in range(4)]
        assert [r.axes for r in runs] == [
            {"load": 0.1, "seed": 1},
            {"load": 0.1, "seed": 2},
            {"load": 0.2, "seed": 1},
            {"load": 0.2, "seed": 2},
        ]

    def test_axes_applied_to_configs(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(
                stage="hybrid",
                sweep={"clusters": [2, 4], "alpha": [0.25]},
            )
        )
        runs = spec.expand()
        assert [r.experiment.clos.clusters for r in runs] == [2, 4]
        assert all(r.micro.alpha == 0.25 for r in runs)
        # The training config is untouched by evaluation-side axes.
        assert all(r.training.clos.clusters == 2 for r in runs)

    def test_derived_seeds_deterministic(self):
        spec_a = ScenarioSpec.from_dict(_spec_dict())
        spec_b = ScenarioSpec.from_dict(_spec_dict())
        seeds_a = [r.seed_derived for r in spec_a.expand()]
        seeds_b = [r.seed_derived for r in spec_b.expand()]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)  # independent streams
        # Runs execute with the derived seed, and record the master.
        runs = spec_a.expand()
        assert all(r.experiment.seed == r.seed_derived for r in runs)
        assert [r.seed_master for r in runs] == [1, 2, 1, 2]

    def test_master_seed_changes_derived_seeds(self):
        lo = ScenarioSpec.from_dict(_spec_dict(sweep={"load": [0.1, 0.2]}))
        hi_dict = _spec_dict(sweep={"load": [0.1, 0.2]})
        hi_dict["experiment"]["seed"] = 6
        hi = ScenarioSpec.from_dict(hi_dict)
        assert [r.seed_derived for r in lo.expand()] != [
            r.seed_derived for r in hi.expand()
        ]

    def test_derivation_position_independent(self):
        # The derived seed hangs off the axis assignment, not the run's
        # index, so growing a sweep does not reseed existing points.
        assert derive_seed("s", 7, {"load": 0.1}) == derive_seed("s", 7, {"load": 0.1})
        assert derive_seed("s", 7, {"load": 0.1}) != derive_seed("s", 7, {"load": 0.2})

    def test_no_sweep_is_single_run(self):
        spec = ScenarioSpec.from_dict(_spec_dict(sweep={}))
        runs = spec.expand()
        assert len(runs) == 1 and runs[0].axes == {}

    def test_inject_hooks_attach_by_index(self):
        spec = ScenarioSpec.from_dict(
            _spec_dict(inject={"1": {"fail_attempts": 2}})
        )
        runs = spec.expand()
        assert runs[0].inject == {}
        assert runs[1].inject == {"fail_attempts": 2}

    def test_unknown_inject_hook_rejected(self):
        with pytest.raises(ValueError, match="unknown hooks"):
            ScenarioSpec.from_dict(_spec_dict(inject={"0": {"explode": True}}))
