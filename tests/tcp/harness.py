"""A two-host test harness with deterministic loss injection.

Builds the minimal packet-level world TCP needs: two hosts joined
through one switch, with a hook that can drop chosen data segments on
the forward path.  All tests drive real :class:`TcpSender` /
:class:`TcpReceiver` objects over real ports.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.kernel import Simulator
from repro.des.monitors import Monitor
from repro.net.host import Host
from repro.net.network import Network, NetworkConfig
from repro.net.packet import Packet
from repro.net.tcp.config import TcpConfig
from repro.topology.graph import Node, NodeRole, Topology


def two_host_topology(rate_bps: float = 1e9, delay_s: float = 1e-5) -> Topology:
    """a -- switch -- b with uniform links."""
    topo = Topology(name="pair")
    topo.add_node(Node("a", NodeRole.SERVER, cluster=0, index=0))
    topo.add_node(Node("b", NodeRole.SERVER, cluster=0, index=1))
    topo.add_node(Node("sw", NodeRole.TOR, cluster=0, index=0))
    topo.add_link("a", "sw", rate_bps, delay_s)
    topo.add_link("b", "sw", rate_bps, delay_s)
    return topo


class LossFilter:
    """Drops selected packets on their way into a receiver.

    ``should_drop(packet)`` decides; dropped packets simply vanish,
    which is indistinguishable (to TCP) from a queue drop.
    """

    def __init__(self, inner, should_drop: Callable[[Packet], bool]) -> None:
        self.inner = inner
        self.name = inner.name
        self.should_drop = should_drop
        self.dropped: list[Packet] = []

    def receive(self, packet: Packet, from_node: str) -> None:
        if self.should_drop(packet):
            self.dropped.append(packet)
            return
        self.inner.receive(packet, from_node)


class TcpPair:
    """A ready-to-run sender/receiver pair over a real network."""

    def __init__(
        self,
        total_bytes: int,
        tcp: Optional[TcpConfig] = None,
        rate_bps: float = 1e9,
        delay_s: float = 1e-5,
        queue_capacity_bytes: int = 150_000,
        drop_filter: Optional[Callable[[Packet], bool]] = None,
        seed: int = 0,
    ) -> None:
        self.sim = Simulator(seed=seed)
        tcp = tcp or TcpConfig()
        topo = two_host_topology(rate_bps, delay_s)
        self.network = Network(
            self.sim,
            topo,
            config=NetworkConfig(tcp=tcp, queue_capacity_bytes=queue_capacity_bytes),
        )
        self.host_a: Host = self.network.host("a")
        self.host_b: Host = self.network.host("b")
        self.rtt_monitor = Monitor("rtt")
        self.host_a.rtt_monitor = self.rtt_monitor
        self.fcts: list[float] = []

        self.loss_filter: Optional[LossFilter] = None
        if drop_filter is not None:
            # Interpose on the switch's port toward b (the data path).
            port = self.network.port("sw", "b")
            self.loss_filter = LossFilter(port.peer, drop_filter)
            port.peer = self.loss_filter

        self.sender = self.host_a.open_flow(
            self.host_b, total_bytes, on_complete=self.fcts.append
        )
        key = (self.host_a.name, self.sender.dst_port, self.sender.src_port)
        self.receiver = self.host_b._receivers[key]

    def run(self, until: Optional[float] = None) -> None:
        """Start the flow and run the simulation."""
        self.sender.start()
        self.sim.run(until=until)

    @property
    def completed(self) -> bool:
        return self.sender.completed
