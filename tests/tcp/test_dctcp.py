"""Behavioural tests for DCTCP congestion control."""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.config import TcpConfig

from tests.tcp.harness import two_host_topology


def _run_pair(tcp: TcpConfig, size: int = 3_000_000, ecn_threshold: int | None = 30_000):
    """One flow over a 100 Mbps bottleneck with deep buffers."""
    sim = Simulator(seed=1)
    topo = two_host_topology(rate_bps=1e8, delay_s=1e-5)
    net = Network(
        sim,
        topo,
        config=NetworkConfig(
            tcp=tcp,
            queue_capacity_bytes=10_000_000,
            ecn_threshold_bytes=ecn_threshold,
        ),
    )
    fcts = []
    sender = net.host("a").open_flow(net.host("b"), size, on_complete=fcts.append)
    sender.start()

    max_queue = 0

    def sample_queue():
        nonlocal max_queue
        # With uniform link rates the standing queue forms at the
        # sender's NIC (the first port the flow saturates).
        port = net.port("a", "sw")
        max_queue = max(max_queue, port.queued_bytes)
        if not sender.completed:
            sim.schedule(1e-4, sample_queue)

    sim.schedule(1e-4, sample_queue)
    sim.run(until=60.0)
    return sender, net, fcts, max_queue


class TestDctcp:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TcpConfig(dctcp=True, dctcp_g=0.0)
        assert TcpConfig(dctcp=True).ecn_enabled
        assert TcpConfig(ecn=True).ecn_enabled
        assert not TcpConfig().ecn_enabled

    def test_flow_completes_with_no_drops(self):
        sender, net, fcts, _ = _run_pair(TcpConfig(dctcp=True))
        assert sender.completed
        assert net.total_drops == 0
        assert len(fcts) == 1

    def test_alpha_converges_positive(self):
        """Sustained marking must drive alpha above zero (and below 1)."""
        sender, _, _, _ = _run_pair(TcpConfig(dctcp=True))
        assert 0.0 < sender.dctcp_alpha <= 1.0

    def test_queue_shorter_than_reno(self):
        """DCTCP's raison d'etre: it holds the bottleneck queue near
        the marking threshold while loss-based Reno fills the buffer."""
        _, _, _, dctcp_queue = _run_pair(TcpConfig(dctcp=True))
        _, _, _, reno_queue = _run_pair(TcpConfig(), ecn_threshold=None)
        assert dctcp_queue < reno_queue / 3

    def test_throughput_close_to_line_rate(self):
        size = 3_000_000
        sender, _, fcts, _ = _run_pair(TcpConfig(dctcp=True), size=size)
        goodput = size * 8 / fcts[0]
        assert goodput == pytest.approx(1e8, rel=0.2)

    def test_gentler_than_classic_ecn(self):
        """Classic ECN halves cwnd per marked window; DCTCP scales by
        alpha/2, so under light marking DCTCP keeps a larger window and
        finishes no slower."""
        size = 3_000_000
        _, _, dctcp_fcts, _ = _run_pair(TcpConfig(dctcp=True), size=size)
        _, _, ecn_fcts, _ = _run_pair(TcpConfig(ecn=True), size=size)
        assert dctcp_fcts[0] <= ecn_fcts[0] * 1.1

    def test_dctcp_mode_bypasses_classic_halving(self):
        """In DCTCP mode the classic one-shot halving must not fire;
        the reduction path is the per-window alpha scaling."""
        sender, _, _, _ = _run_pair(TcpConfig(dctcp=True))
        # Classic handling would have left _ecn_recover advanced.
        assert sender._ecn_recover == 0
