"""Stress property: TCP delivers the exact byte stream under random loss.

Whatever (bounded) random loss pattern the network inflicts on first
transmissions, New Reno must eventually deliver every byte exactly
once, in order, with cwnd never collapsing below one MSS.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import DEFAULT_MSS
from repro.net.tcp.config import TcpConfig

from tests.tcp.harness import TcpPair


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    loss_rate=st.floats(min_value=0.0, max_value=0.25),
    segments=st.integers(min_value=1, max_value=60),
)
@settings(max_examples=15, deadline=None)
def test_reliable_delivery_under_random_loss(seed, loss_rate, segments):
    rng = np.random.default_rng(seed)

    def drop(packet):
        # Retransmissions always pass: guarantees eventual delivery.
        return (not packet.retransmission) and rng.random() < loss_rate

    total = segments * DEFAULT_MSS
    config = TcpConfig(min_rto_s=0.005, initial_rto_s=0.02)
    pair = TcpPair(total_bytes=total, tcp=config, drop_filter=drop)
    pair.run(until=120.0)
    assert pair.completed, (
        f"flow stalled: seed={seed} loss={loss_rate:.2f} segments={segments}"
    )
    assert pair.receiver.bytes_delivered == total
    assert pair.receiver.rcv_nxt == total
    assert pair.receiver.ooo_intervals == []
    assert pair.sender.cwnd >= DEFAULT_MSS


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_ack_loss_also_recoverable(seed):
    """Loss on the ACK path (reverse direction) must not corrupt the
    stream either — cumulative ACKs make most ACK loss harmless."""
    rng = np.random.default_rng(seed)

    from repro.des.kernel import Simulator
    from repro.net.network import Network, NetworkConfig
    from tests.tcp.harness import LossFilter, two_host_topology

    sim = Simulator(seed=1)
    topo = two_host_topology()
    net = Network(sim, topo, NetworkConfig(tcp=TcpConfig(min_rto_s=0.005)))
    # Interpose on the switch's port toward a (the ACK path).
    port = net.port("sw", "a")
    ack_filter = LossFilter(port.peer, lambda p: rng.random() < 0.2)
    port.peer = ack_filter

    total = 30 * DEFAULT_MSS
    fcts = []
    sender = net.host("a").open_flow(net.host("b"), total, on_complete=fcts.append)
    sender.start()
    sim.run(until=120.0)
    assert sender.completed
    receiver = net.host("b")._receivers[("a", sender.dst_port, sender.src_port)]
    assert receiver.bytes_delivered == total
