"""Behavioural tests of the TCP New Reno implementation.

Every test runs real sender/receiver state machines over real simulated
links (see ``harness.py``); loss is injected deterministically.
"""

from __future__ import annotations

import pytest

from repro.net.packet import DEFAULT_MSS
from repro.net.tcp.config import TcpConfig
from repro.net.tcp.sender import SenderState

from tests.tcp.harness import TcpPair


class TestLosslessTransfer:
    def test_small_flow_completes(self):
        pair = TcpPair(total_bytes=10 * DEFAULT_MSS)
        pair.run()
        assert pair.completed
        assert pair.receiver.bytes_delivered == 10 * DEFAULT_MSS
        assert pair.sender.retransmissions == 0
        assert len(pair.fcts) == 1

    def test_single_segment_flow(self):
        pair = TcpPair(total_bytes=100)
        pair.run()
        assert pair.completed
        assert pair.receiver.bytes_delivered == 100

    def test_one_byte_flow(self):
        pair = TcpPair(total_bytes=1)
        pair.run()
        assert pair.completed

    def test_fct_close_to_ideal_for_bulk_flow(self):
        """A 1 MB flow on 1 Gbps should finish within ~2x of the
        store-and-forward lower bound (slow start costs some RTTs)."""
        size = 1_000_000
        pair = TcpPair(total_bytes=size, rate_bps=1e9, delay_s=1e-5)
        pair.run()
        assert pair.completed
        ideal = size * 8 / 1e9
        assert pair.fcts[0] < 2.5 * ideal
        assert pair.fcts[0] > ideal  # cannot beat the line rate

    def test_rtt_samples_reasonable(self):
        pair = TcpPair(total_bytes=50 * DEFAULT_MSS, delay_s=1e-4)
        pair.run()
        rtts = pair.rtt_monitor.values
        assert len(rtts) >= 2
        # RTT floor: 4 propagation legs plus serializations.
        assert rtts.min() >= 4e-4

    def test_throughput_matches_bottleneck(self):
        """Long flow at 100 Mbps bottleneck: goodput within 15%."""
        size = 2_000_000
        pair = TcpPair(total_bytes=size, rate_bps=1e8, delay_s=1e-5)
        pair.run()
        goodput = size * 8 / pair.fcts[0]
        assert goodput == pytest.approx(1e8, rel=0.15)


class TestSlowStartAndCongestionAvoidance:
    def test_initial_cwnd(self):
        config = TcpConfig(initial_cwnd_segments=10)
        pair = TcpPair(total_bytes=100 * DEFAULT_MSS, tcp=config)
        assert pair.sender.cwnd == 10 * DEFAULT_MSS
        assert pair.sender.state is SenderState.SLOW_START

    def test_cwnd_grows_during_transfer(self):
        pair = TcpPair(total_bytes=200 * DEFAULT_MSS)
        initial = pair.sender.cwnd
        pair.run()
        assert pair.sender.cwnd > initial

    def test_transition_to_congestion_avoidance(self):
        config = TcpConfig(initial_ssthresh_bytes=20 * DEFAULT_MSS)
        pair = TcpPair(total_bytes=300 * DEFAULT_MSS, tcp=config)
        pair.run()
        assert pair.completed
        assert pair.sender.state is SenderState.CONGESTION_AVOIDANCE


class TestFastRetransmit:
    def test_single_loss_recovers_without_timeout(self):
        """Drop one mid-flow segment once; New Reno must recover via
        fast retransmit, not RTO."""
        target_seq = 20 * DEFAULT_MSS
        dropped_once = []

        def drop(packet):
            if packet.seq == target_seq and not packet.retransmission and not dropped_once:
                dropped_once.append(packet)
                return True
            return False

        pair = TcpPair(total_bytes=100 * DEFAULT_MSS, drop_filter=drop)
        pair.run()
        assert pair.completed
        assert len(dropped_once) == 1
        assert pair.sender.fast_retransmits == 1
        assert pair.sender.timeouts == 0
        assert pair.receiver.bytes_delivered == 100 * DEFAULT_MSS

    def test_cwnd_halved_after_loss(self):
        target_seq = 30 * DEFAULT_MSS
        def drop(packet):
            return packet.seq == target_seq and not packet.retransmission

        pair = TcpPair(total_bytes=200 * DEFAULT_MSS, drop_filter=drop)
        pair.run()
        assert pair.completed
        # ssthresh was set to half the flight size at loss detection.
        assert pair.sender.ssthresh < 200 * DEFAULT_MSS

    def test_multiple_losses_same_window_newreno_partial_acks(self):
        """Two losses in one window: New Reno handles the partial ACK
        by retransmitting the second hole while staying in recovery."""
        targets = {10 * DEFAULT_MSS, 12 * DEFAULT_MSS}
        dropped = set()

        def drop(packet):
            if packet.seq in targets and not packet.retransmission and packet.seq not in dropped:
                dropped.add(packet.seq)
                return True
            return False

        pair = TcpPair(total_bytes=60 * DEFAULT_MSS, drop_filter=drop)
        pair.run()
        assert pair.completed
        assert len(dropped) == 2
        assert pair.sender.fast_retransmits == 1  # one recovery episode
        assert pair.receiver.bytes_delivered == 60 * DEFAULT_MSS

    def test_reordering_within_dupack_threshold_no_spurious_retransmit(self):
        """Fewer than 3 dupACKs must not trigger fast retransmit."""
        pair = TcpPair(total_bytes=50 * DEFAULT_MSS)
        pair.run()
        assert pair.sender.fast_retransmits == 0


class TestTimeout:
    def test_tail_blackout_triggers_rto_and_recovery(self):
        """Drop the whole tail of the window once (no packets behind
        the holes -> no dupACKs -> only RTO can recover)."""
        def drop(packet):
            return packet.seq >= 28 * DEFAULT_MSS and not packet.retransmission

        pair = TcpPair(total_bytes=60 * DEFAULT_MSS, drop_filter=drop)
        pair.run(until=30.0)
        assert pair.completed
        assert pair.sender.timeouts >= 1
        assert pair.receiver.bytes_delivered == 60 * DEFAULT_MSS

    def test_partial_window_loss_recovers_without_rto(self):
        """A hole with plenty of later packets delivered generates
        enough dupACKs that New Reno partial-ACK recovery fixes every
        loss with zero timeouts — the point of fast recovery."""
        def drop(packet):
            return (
                10 * DEFAULT_MSS <= packet.seq < 22 * DEFAULT_MSS
                and not packet.retransmission
            )

        pair = TcpPair(total_bytes=40 * DEFAULT_MSS, drop_filter=drop)
        pair.run(until=30.0)
        assert pair.completed
        assert pair.sender.timeouts == 0
        assert pair.sender.fast_retransmits >= 1
        assert pair.receiver.bytes_delivered == 40 * DEFAULT_MSS

    def test_rto_backoff_under_repeated_loss(self):
        """Dropping every *first* transmission: one RTO converts the
        whole stream to retransmissions (go-back-N), which bypass the
        filter and finish the flow."""
        def drop(packet):
            return not packet.retransmission

        config = TcpConfig(min_rto_s=0.005, initial_rto_s=0.01)
        pair = TcpPair(total_bytes=3 * DEFAULT_MSS, tcp=config, drop_filter=drop)
        pair.run(until=60.0)
        assert pair.completed
        assert pair.sender.timeouts >= 1
        assert pair.sender.retransmissions >= 3


class TestKarnsAlgorithm:
    def test_no_rtt_sample_from_retransmission(self):
        """With heavy loss, RTT samples must never come from
        retransmitted segments (they would be wildly wrong)."""
        def drop(packet):
            return packet.seq == 0 and not packet.retransmission

        config = TcpConfig(min_rto_s=0.005, initial_rto_s=0.02)
        pair = TcpPair(total_bytes=DEFAULT_MSS, tcp=config, drop_filter=drop)
        pair.run(until=10.0)
        assert pair.completed
        # The only segment was retransmitted, so zero valid samples.
        assert len(pair.rtt_monitor) == 0


class TestDelayedAck:
    def test_delayed_ack_reduces_ack_count(self):
        plain = TcpPair(total_bytes=100 * DEFAULT_MSS)
        plain.run()
        delayed = TcpPair(
            total_bytes=100 * DEFAULT_MSS, tcp=TcpConfig(delayed_ack=True)
        )
        delayed.run()
        assert delayed.completed and plain.completed
        assert delayed.receiver.acks_sent < plain.receiver.acks_sent

    def test_delayed_ack_timer_flushes_odd_segment(self):
        delayed = TcpPair(total_bytes=DEFAULT_MSS, tcp=TcpConfig(delayed_ack=True))
        delayed.run(until=5.0)
        assert delayed.completed


class TestEcn:
    def test_ecn_reduces_cwnd_without_drops(self):
        """With ECN marking at a low threshold, the sender should back
        off while the network drops nothing."""
        from repro.des.kernel import Simulator
        from repro.net.network import Network, NetworkConfig

        from tests.tcp.harness import two_host_topology

        sim = Simulator()
        tcp = TcpConfig(ecn=True)
        topo = two_host_topology(rate_bps=1e8, delay_s=1e-5)
        net = Network(
            sim,
            topo,
            config=NetworkConfig(
                tcp=tcp, queue_capacity_bytes=10_000_000, ecn_threshold_bytes=15_000
            ),
        )
        fcts = []
        sender = net.host("a").open_flow(net.host("b"), 2_000_000, on_complete=fcts.append)
        sender.start()
        sim.run()
        assert sender.completed
        assert net.total_drops == 0
        marked = sum(p.stats.marked for p in net.ports().values())
        assert marked > 0


class TestSenderValidation:
    def test_zero_size_flow_rejected(self):
        with pytest.raises(ValueError):
            TcpPair(total_bytes=0)
