"""Property-based tests of receiver reassembly.

The receiver must deliver exactly the byte stream regardless of the
order, duplication, or fragmentation of arriving segments.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.net.tcp.config import TcpConfig
from repro.net.tcp.receiver import TcpReceiver


class _RecordingHost:
    """Captures ACKs the receiver emits."""

    def __init__(self) -> None:
        self.name = "b"
        self.sim = Simulator()
        self.acks: list[Packet] = []

    def transmit(self, packet: Packet) -> None:
        self.acks.append(packet)


def _segment(seq: int, length: int) -> Packet:
    return Packet(
        src="a", dst="b", src_port=1, dst_port=2, seq=seq, payload_bytes=length
    )


def _segments_covering(total: int, sizes: list[int]) -> list[Packet]:
    """Cut [0, total) into consecutive segments with the given sizes."""
    segments = []
    position = 0
    i = 0
    while position < total:
        size = min(sizes[i % len(sizes)], total - position)
        segments.append(_segment(position, size))
        position += size
        i += 1
    return segments


@given(
    total=st.integers(min_value=1, max_value=5000),
    sizes=st.lists(st.integers(min_value=1, max_value=700), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    duplicate=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_reassembly_any_arrival_order(total, sizes, seed, duplicate):
    """Shuffled (and optionally duplicated) segments always reassemble."""
    import numpy as np

    host = _RecordingHost()
    receiver = TcpReceiver(host, peer="a", src_port=2, dst_port=1, config=TcpConfig())
    segments = _segments_covering(total, sizes)
    order = np.random.default_rng(seed).permutation(len(segments))
    arrivals = [segments[i] for i in order]
    if duplicate:
        arrivals = arrivals + arrivals[: len(arrivals) // 2 + 1]
    for segment in arrivals:
        receiver.on_data(segment)
    assert receiver.rcv_nxt == total
    assert receiver.bytes_delivered == total
    assert receiver.ooo_intervals == []
    # The final ACK acknowledges everything.
    assert host.acks[-1].ack == total


@given(
    total=st.integers(min_value=2, max_value=3000),
    hole_at=st.integers(min_value=1, max_value=2999),
)
@settings(max_examples=40, deadline=None)
def test_cumulative_ack_never_exceeds_contiguous_prefix(total, hole_at):
    """With one segment withheld, ACKs never pass the hole."""
    hole_at = min(hole_at, total - 1)
    host = _RecordingHost()
    receiver = TcpReceiver(host, peer="a", src_port=2, dst_port=1, config=TcpConfig())
    segments = _segments_covering(total, [97])
    withheld = None
    for segment in segments:
        if segment.seq <= hole_at < segment.seq + segment.payload_bytes:
            withheld = segment
            continue
        receiver.on_data(segment)
    assert withheld is not None
    assert receiver.rcv_nxt <= withheld.seq
    for ack in host.acks:
        assert ack.ack <= withheld.seq
    # Delivering the hole completes the stream.
    receiver.on_data(withheld)
    assert receiver.rcv_nxt == total


def test_ack_monotonicity():
    """Cumulative ACK numbers never decrease."""
    host = _RecordingHost()
    receiver = TcpReceiver(host, peer="a", src_port=2, dst_port=1, config=TcpConfig())
    import numpy as np

    segments = _segments_covering(4000, [311])
    for i in np.random.default_rng(7).permutation(len(segments)):
        receiver.on_data(segments[i])
    acks = [a.ack for a in host.acks]
    assert acks == sorted(acks)
