"""Tests for the Jacobson/Karels RTT estimator."""

from __future__ import annotations

import pytest

from repro.net.tcp.rtt import RttEstimator


def _estimator(min_rto=0.01, max_rto=5.0, initial=0.1) -> RttEstimator:
    return RttEstimator(min_rto_s=min_rto, max_rto_s=max_rto, initial_rto_s=initial)


class TestRttEstimator:
    def test_initial_rto_before_samples(self):
        est = _estimator(initial=0.25)
        assert est.rto_s == 0.25

    def test_first_sample_initializes(self):
        est = _estimator()
        est.observe(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.rto_s == pytest.approx(0.1 + 4 * 0.05)

    def test_converges_to_constant_rtt(self):
        est = _estimator()
        for _ in range(200):
            est.observe(0.02)
        assert est.srtt == pytest.approx(0.02, rel=1e-6)
        assert est.rttvar == pytest.approx(0.0, abs=1e-6)
        assert est.rto_s == pytest.approx(0.02, abs=1e-3)

    def test_min_rto_clamp(self):
        est = _estimator(min_rto=0.2)
        for _ in range(100):
            est.observe(0.001)
        assert est.rto_s == 0.2

    def test_max_rto_clamp(self):
        est = _estimator(max_rto=1.0)
        est.observe(0.9)
        for _ in range(10):
            est.backoff()
        assert est.rto_s == 1.0

    def test_backoff_doubles(self):
        est = _estimator()
        est.observe(0.1)
        base = est.rto_s
        est.backoff()
        assert est.rto_s == pytest.approx(min(base * 2, 5.0))
        est.backoff()
        assert est.rto_s == pytest.approx(min(base * 4, 5.0))

    def test_sample_resets_backoff(self):
        est = _estimator()
        est.observe(0.1)
        base = est.rto_s
        est.backoff()
        est.observe(0.1)
        assert est.rto_s == pytest.approx(base, rel=0.2)

    def test_variance_reacts_to_jitter(self):
        est = _estimator()
        for i in range(100):
            est.observe(0.02 if i % 2 == 0 else 0.04)
        assert est.rttvar > 0.005

    def test_negative_sample_rejected(self):
        est = _estimator()
        with pytest.raises(ValueError):
            est.observe(-0.1)
