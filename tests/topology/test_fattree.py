"""Tests for the k-ary fat-tree builder and its pipeline compatibility."""

from __future__ import annotations

import pytest

from repro.core.region import Region
from repro.topology.fattree import FatTreeParams, build_fat_tree
from repro.topology.graph import NodeRole
from repro.topology.routing import EcmpRouting


class TestFatTreeStructure:
    def test_k4_counts(self):
        params = FatTreeParams(k=4)
        topo = build_fat_tree(params)
        assert len(topo.servers()) == 16  # k^3/4
        assert len(topo.nodes_with_role(NodeRole.TOR)) == 8  # k * k/2
        assert len(topo.nodes_with_role(NodeRole.CLUSTER)) == 8
        assert len(topo.nodes_with_role(NodeRole.CORE)) == 4  # (k/2)^2
        # Links: 16 server + 16 edge-agg + 16 agg-core.
        assert topo.link_count == 48

    def test_k6_counts(self):
        topo = build_fat_tree(FatTreeParams(k=6))
        assert len(topo.servers()) == 54
        assert len(topo.nodes_with_role(NodeRole.CORE)) == 9

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            FatTreeParams(k=3)
        with pytest.raises(ValueError):
            FatTreeParams(k=0)

    def test_switch_port_counts_are_k(self):
        """Every switch in a k-ary fat-tree has exactly k links."""
        k = 4
        topo = build_fat_tree(FatTreeParams(k=k))
        for switch in topo.switches():
            assert len(topo.neighbors(switch.name)) == k

    def test_core_reaches_every_pod(self):
        topo = build_fat_tree(FatTreeParams(k=4))
        for core in topo.nodes_with_role(NodeRole.CORE):
            pods = {topo.node(n).cluster for n in topo.neighbors(core.name)}
            assert pods == {0, 1, 2, 3}

    def test_pods_are_clusters(self):
        topo = build_fat_tree(FatTreeParams(k=4))
        assert topo.cluster_ids() == [0, 1, 2, 3]
        pod0 = topo.cluster_nodes(0)
        assert len(pod0) == 4 + 2 + 2  # 4 servers + 2 edge + 2 agg


class TestFatTreeRouting:
    def test_distances(self):
        topo = build_fat_tree(FatTreeParams(k=4))
        routing = EcmpRouting(topo)
        # Same edge switch: 2 hops; same pod: 4; cross pod: 6.
        assert routing.distance("server-p0-e0-s0", "server-p0-e0-s1") == 2
        assert routing.distance("server-p0-e0-s0", "server-p0-e1-s0") == 4
        assert routing.distance("server-p0-e0-s0", "server-p3-e1-s1") == 6

    def test_multipath_diversity(self):
        """Cross-pod flows should spread over multiple cores."""
        topo = build_fat_tree(FatTreeParams(k=4))
        routing = EcmpRouting(topo)
        cores = {
            routing.path("server-p0-e0-s0", "server-p1-e0-s0", h)[3]
            for h in range(64)
        }
        assert len(cores) >= 2


class TestFatTreePipelineCompatibility:
    def test_pod_region(self):
        topo = build_fat_tree(FatTreeParams(k=4))
        region = Region.cluster(topo, 2)
        assert len(region.switches) == 4  # 2 edge + 2 agg
        assert len(region.shadow_servers) == 4

    def test_trace_and_hybrid_on_fat_tree(self):
        """The full pipeline runs on a fat-tree: collect pod trace,
        train, substitute the pod."""
        from repro.core.cluster_model import ApproximatedCluster
        from repro.core.features import RegionFeatureExtractor
        from repro.core.micro import MicroModelConfig
        from repro.core.training import RegionTraceCollector, train_cluster_model
        from repro.des.kernel import Simulator
        from repro.net.network import Network, NetworkConfig
        from repro.traffic.apps import TrafficGenerator
        from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
        from repro.traffic.distributions import web_search_sizes
        from repro.traffic.matrix import UniformMatrix

        topo = build_fat_tree(FatTreeParams(k=4))
        sizes = web_search_sizes()
        rate = arrival_rate_for_load(0.25, 16, 10e9, sizes.mean())

        sim = Simulator(seed=141)
        net = Network(sim, topo, NetworkConfig())
        collector = RegionTraceCollector(net, region=1)
        gen = TrafficGenerator(
            sim, net, matrix=UniformMatrix(topo), sizes=sizes,
            arrivals=PoissonArrivals(rate),
        )
        gen.start()
        sim.run(until=0.008)
        records = collector.finalize()
        assert len(records) > 100

        extractor = RegionFeatureExtractor(topo, net.routing, 1)
        micro = MicroModelConfig(
            hidden_size=12, num_layers=1, window=8, train_batches=15
        )
        trained = train_cluster_model(records, extractor, config=micro)

        from repro.core.hybrid import HybridSimulation

        sim2 = Simulator(seed=141)
        hybrid = HybridSimulation(sim2, topo, trained)
        gen2 = TrafficGenerator(
            sim2, hybrid.network, matrix=UniformMatrix(topo), sizes=sizes,
            arrivals=PoissonArrivals(rate), flow_filter=hybrid.flow_filter,
        )
        gen2.start()
        sim2.run(until=0.004)
        assert hybrid.model_packets_handled() > 0
        assert set(hybrid.models) == {1, 2, 3}
