"""Tests for the topology graph model and the Clos/leaf-spine builders."""

from __future__ import annotations

import pytest

from repro.topology.clos import (
    ClosParams,
    agg_name,
    build_clos,
    core_name,
    server_name,
    tor_name,
)
from repro.topology.graph import Node, NodeRole, Topology
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine


class TestTopologyGraph:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("a", NodeRole.SERVER))
        with pytest.raises(ValueError):
            topo.add_node(Node("a", NodeRole.TOR))

    def test_link_requires_known_nodes(self):
        topo = Topology()
        topo.add_node(Node("a", NodeRole.SERVER))
        with pytest.raises(KeyError):
            topo.add_link("a", "ghost", 1e9, 1e-6)

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node(Node("a", NodeRole.SERVER))
        with pytest.raises(ValueError):
            topo.add_link("a", "a", 1e9, 1e-6)

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_node(Node("a", NodeRole.SERVER))
        topo.add_node(Node("b", NodeRole.TOR))
        topo.add_link("a", "b", 1e9, 1e-6)
        with pytest.raises(ValueError):
            topo.add_link("b", "a", 1e9, 1e-6)

    def test_link_other_endpoint(self):
        topo = Topology()
        topo.add_node(Node("a", NodeRole.SERVER))
        topo.add_node(Node("b", NodeRole.TOR))
        link = topo.add_link("a", "b", 1e9, 1e-6)
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(ValueError):
            link.other("c")

    def test_validate_connected_catches_islands(self):
        topo = Topology()
        topo.add_node(Node("a", NodeRole.SERVER))
        topo.add_node(Node("b", NodeRole.SERVER))
        with pytest.raises(ValueError):
            topo.validate_connected()


class TestClosBuilder:
    def test_paper_evaluation_shape(self):
        """Section 6.2: clusters of four switches and eight servers."""
        params = ClosParams(clusters=2)
        assert params.switches_per_cluster == 4
        assert params.servers_per_cluster == 8
        topo = build_clos(params)
        assert len(topo.servers()) == 16
        tors = topo.nodes_with_role(NodeRole.TOR)
        aggs = topo.nodes_with_role(NodeRole.CLUSTER)
        cores = topo.nodes_with_role(NodeRole.CORE)
        assert len(tors) == 4 and len(aggs) == 4 and len(cores) == 2

    def test_wiring(self):
        topo = build_clos(ClosParams(clusters=2))
        # Every server has exactly one uplink (its ToR).
        for server in topo.servers():
            assert len(topo.neighbors(server.name)) == 1
        # Every ToR connects to all servers of its rack plus all aggs.
        neighbors = set(topo.neighbors(tor_name(0, 0)))
        assert server_name(0, 0, 0) in neighbors
        assert agg_name(0, 0) in neighbors and agg_name(0, 1) in neighbors
        assert agg_name(1, 0) not in neighbors  # not to other clusters
        # Every agg connects to every core.
        agg_neighbors = set(topo.neighbors(agg_name(1, 1)))
        assert core_name(0) in agg_neighbors and core_name(1) in agg_neighbors

    def test_cluster_labels(self):
        topo = build_clos(ClosParams(clusters=3))
        assert topo.cluster_ids() == [0, 1, 2]
        for core in topo.nodes_with_role(NodeRole.CORE):
            assert core.cluster is None
        cluster1 = topo.cluster_nodes(1)
        assert all(n.cluster == 1 for n in cluster1)
        assert len(cluster1) == 8 + 4  # servers + switches

    @pytest.mark.parametrize("clusters", [2, 4, 8])
    def test_scaling(self, clusters):
        params = ClosParams(clusters=clusters)
        topo = build_clos(params)
        assert len(topo.servers()) == params.total_servers
        expected_links = clusters * (8 + 2 * 2 + 2 * 2)  # srv + tor-agg + agg-core
        assert topo.link_count == expected_links

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClosParams(clusters=0)
        with pytest.raises(ValueError):
            ClosParams(servers_per_tor=0)


class TestLeafSpineBuilder:
    def test_full_bipartite(self):
        params = LeafSpineParams(tors=3, spines=2, servers_per_tor=4)
        topo = build_leaf_spine(params)
        for tor in topo.nodes_with_role(NodeRole.TOR):
            spines = [
                n for n in topo.neighbors(tor.name)
                if topo.node(n).role is NodeRole.CLUSTER
            ]
            assert len(spines) == 2
        assert len(topo.servers()) == 12

    def test_figure1_sweep_sizes(self):
        """Figure 1 sweeps ToR/spine counts 4..64, racks of 4."""
        for size in (4, 8, 16):
            topo = build_leaf_spine(LeafSpineParams(tors=size, spines=size))
            assert len(topo.servers()) == 4 * size
            assert topo.link_count == size * 4 + size * size

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LeafSpineParams(tors=0)
