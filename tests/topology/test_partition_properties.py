"""Property tests for worker partitioning and window resolution.

Satellite 3 of the shard test pack: over random Clos and leaf-spine
topologies, every node is assigned to exactly one worker, the cut-link
predicate is symmetric, ``cross_partition_links`` agrees with a manual
recount over ``partition_for_workers`` output, ``partition_hybrid``
never splits an approximated cluster, and the resolved synchronization
window never exceeds any cut-link delay or the model-egress lookahead
(the conservative-causality bound every exchange relies on).
"""

from __future__ import annotations

import functools
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdes import PdesConfig, resolve_window
from repro.topology.clos import ClosParams, build_clos
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.topology.partition import (
    cross_partition_links,
    owner_map,
    partition_for_workers,
    partition_hybrid,
)

SETTINGS = settings(max_examples=40, deadline=None)


@functools.lru_cache(maxsize=None)
def _clos(clusters: int):
    return build_clos(ClosParams(clusters=clusters))


@functools.lru_cache(maxsize=None)
def _leaf_spine(tors: int, spines: int):
    return build_leaf_spine(
        LeafSpineParams(tors=tors, spines=spines, servers_per_tor=2)
    )


topologies = st.one_of(
    st.integers(min_value=2, max_value=6).map(_clos),
    st.tuples(
        st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=3)
    ).map(lambda p: _leaf_spine(*p)),
)
workers_st = st.integers(min_value=1, max_value=8)


@given(topology=topologies, workers=workers_st)
@SETTINGS
def test_every_node_assigned_exactly_once(topology, workers):
    partitions = partition_for_workers(topology, workers)
    assert len(partitions) == workers
    names = [name for part in partitions for name in part]
    assert len(names) == len(set(names)) == topology.node_count


@given(topology=topologies, workers=workers_st)
@SETTINGS
def test_cut_link_set_symmetric_and_consistent(topology, workers):
    partitions = partition_for_workers(topology, workers)
    owner = owner_map(partitions)
    # The cut predicate must not depend on link direction.
    forward = {
        (link.a, link.b)
        for link in topology.links
        if owner[link.a] != owner[link.b]
    }
    backward = {
        (link.b, link.a)
        for link in topology.links
        if owner[link.b] != owner[link.a]
    }
    assert {(b, a) for (a, b) in forward} == backward
    # ... and cross_partition_links agrees with a manual recount.
    assert cross_partition_links(topology, partitions) == len(forward)
    # Partition *order* must not matter either.
    assert cross_partition_links(topology, list(reversed(partitions))) == len(
        forward
    )


@given(clusters=st.integers(min_value=2, max_value=6), workers=workers_st)
@SETTINGS
def test_partition_hybrid_covers_all_and_keeps_clusters_atomic(
    clusters, workers
):
    topology = _clos(clusters)
    full_cluster = 0
    partitions = partition_hybrid(topology, full_cluster, workers)
    names = [name for part in partitions for name in part]
    assert len(names) == len(set(names)) == topology.node_count
    owner = owner_map(partitions)
    # Approximated clusters (everything but the full-fidelity one) ride
    # as model shards: their whole fabric must land on one worker, so
    # the host<->model path never crosses a process boundary.
    for cluster in topology.cluster_ids():
        if cluster == full_cluster:
            continue
        owners = {
            owner[node.name] for node in topology.cluster_nodes(cluster)
        }
        assert len(owners) == 1, f"cluster {cluster} split across {owners}"


@given(
    topology=topologies,
    workers=workers_st,
    lookahead=st.one_of(
        st.none(), st.floats(min_value=1e-7, max_value=1e-3)
    ),
)
@SETTINGS
def test_resolved_window_never_exceeds_lookahead_bound(
    topology, workers, lookahead
):
    partitions = partition_for_workers(topology, workers)
    config = PdesConfig(workers=workers, duration_s=0.01, window_s=None, seed=0)
    window = resolve_window(
        topology, partitions, config, model_lookahead_s=lookahead
    )
    assert window > 0
    owner = owner_map(partitions)
    for link in topology.links:
        if owner[link.a] != owner[link.b]:
            assert window <= link.delay_s + 1e-18
    if lookahead is not None:
        assert window <= lookahead + 1e-18
    # Any larger explicit window is rejected, never clamped.
    with pytest.raises(ValueError, match="exceeds"):
        resolve_window(
            topology,
            partitions,
            replace(config, window_s=window * 1.5),
            model_lookahead_s=lookahead,
        )
