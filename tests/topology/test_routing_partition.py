"""Tests for ECMP routing tables and topology partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.clos import ClosParams, build_clos, server_name
from repro.topology.graph import NodeRole
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.topology.partition import (
    cross_partition_links,
    partition_by_cluster,
    partition_for_workers,
)
from repro.topology.routing import EcmpRouting, ecmp_hash


class TestEcmpHash:
    def test_deterministic(self):
        assert ecmp_hash(1, 2, 3) == ecmp_hash(1, 2, 3)

    def test_order_sensitive(self):
        assert ecmp_hash(1, 2) != ecmp_hash(2, 1)

    @given(st.lists(st.integers(min_value=0, max_value=2**63), min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_range(self, components):
        value = ecmp_hash(*components)
        assert 0 <= value < 2**64


class TestEcmpRouting:
    def test_shortest_path_distances(self, small_clos, small_clos_routing):
        routing = small_clos_routing
        # server -> same-rack server: up to ToR and back = 2 hops.
        assert routing.distance(server_name(0, 0, 0), server_name(0, 0, 1)) == 2
        # server -> other-rack same-cluster: via agg = 4 hops.
        assert routing.distance(server_name(0, 0, 0), server_name(0, 1, 0)) == 4
        # server -> other cluster: via core = 6 hops.
        assert routing.distance(server_name(0, 0, 0), server_name(1, 0, 0)) == 6

    def test_next_hops_are_equal_cost(self, small_clos, small_clos_routing):
        src = server_name(0, 0, 0)
        dst = server_name(1, 0, 0)
        tor = "tor-c0-0"
        hops = small_clos_routing.next_hops(tor, dst)
        assert sorted(hops) == ["agg-c0-0", "agg-c0-1"]

    def test_path_endpoints_and_consistency(self, small_clos, small_clos_routing):
        src = server_name(0, 1, 2)
        dst = server_name(1, 0, 3)
        path = small_clos_routing.path(src, dst, flow_hash=12345)
        assert path[0] == src and path[-1] == dst
        assert len(path) == 7  # 6 hops
        # Same hash -> same path, different hash may differ but same length.
        assert small_clos_routing.path(src, dst, 12345) == path
        other = small_clos_routing.path(src, dst, 54321)
        assert len(other) == len(path)

    def test_all_pairs_reachable(self, small_clos, small_clos_routing):
        servers = [n.name for n in small_clos.servers()]
        for src in servers[:4]:
            for dst in servers[-4:]:
                if src == dst:
                    continue
                path = small_clos_routing.path(src, dst, 7)
                assert path[0] == src and path[-1] == dst

    def test_route_to_self_is_empty(self, small_clos, small_clos_routing):
        assert small_clos_routing.next_hops("tor-c0-0", "tor-c0-0") == []
        with pytest.raises(KeyError):
            small_clos_routing.next_hop("tor-c0-0", "tor-c0-0", 1)

    def test_unknown_destination_raises(self, small_clos, small_clos_routing):
        with pytest.raises(KeyError):
            small_clos_routing.next_hops("tor-c0-0", "no-such-node")

    def test_hash_spreads_over_paths(self, small_clos, small_clos_routing):
        """Different flows should use different equal-cost paths."""
        src = server_name(0, 0, 0)
        dst = server_name(1, 1, 0)
        first_hops = {
            small_clos_routing.path(src, dst, h)[2]  # the agg choice
            for h in range(64)
        }
        assert len(first_hops) == 2  # both aggs used


class TestPartitioning:
    def test_partition_by_cluster_excludes_core(self, small_clos):
        partitions = partition_by_cluster(small_clos)
        assert set(partitions) == {0, 1}
        all_names = [n for names in partitions.values() for n in names]
        assert not any(name.startswith("core") for name in all_names)
        assert len(partitions[0]) == 12  # 8 servers + 4 switches

    def test_workers_cover_all_nodes(self, small_clos):
        for workers in (1, 2, 3, 4):
            parts = partition_for_workers(small_clos, workers)
            assert len(parts) == workers
            union = set().union(*parts)
            assert union == {n.name for n in small_clos.nodes}
            # Disjoint.
            assert sum(len(p) for p in parts) == small_clos.node_count

    def test_racks_stay_together(self):
        topo = build_leaf_spine(LeafSpineParams(tors=4, spines=4))
        parts = partition_for_workers(topo, 2)
        for part in parts:
            for name in part:
                if topo.node(name).role is NodeRole.SERVER:
                    tor = next(
                        n for n in topo.neighbors(name)
                        if topo.node(n).role is NodeRole.TOR
                    )
                    assert tor in part

    def test_cross_partition_links_grow_with_size(self):
        """The synchronization surface scales ~quadratically in
        leaf-spine fabrics — the mechanism behind Figure 1."""
        counts = []
        for size in (4, 8, 16):
            topo = build_leaf_spine(LeafSpineParams(tors=size, spines=size))
            parts = partition_for_workers(topo, 2)
            counts.append(cross_partition_links(topo, parts))
        assert counts[0] < counts[1] < counts[2]
        # Quadratic-ish growth: doubling size much more than doubles cuts.
        assert counts[2] > 3 * counts[1]

    def test_invalid_worker_count(self, small_clos):
        with pytest.raises(ValueError):
            partition_for_workers(small_clos, 0)
