"""Property-based tests of the RoutingPolicy seam.

Flowlet and adaptive routing must always forward onto an attached
neighbor that lies on a *live* shortest path (also after failures),
and plain ECMP must behave identically through the seam — the policy
refactor cannot perturb existing experiments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.clos import ClosParams, build_clos
from repro.topology.routing import (
    AdaptiveRouting,
    EcmpRouting,
    FlowletRouting,
    NoRouteError,
    RoutingConfig,
    make_routing,
)

TOPOLOGY = build_clos(ClosParams(clusters=2))
SERVERS = sorted(node.name for node in TOPOLOGY.servers())
SWITCHES = sorted(node.name for node in TOPOLOGY.switches())
#: A core uplink whose loss leaves the fabric connected (there are
#: two cores, each attached to every aggregation switch).
REDUNDANT_LINK = ("core-0", "agg-c0-0")

flow_hashes = st.integers(min_value=0, max_value=2**64 - 1)
times = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _policy(name: str) -> EcmpRouting:
    return make_routing(TOPOLOGY, RoutingConfig(policy=name))


def _assert_on_live_shortest_path(routing: EcmpRouting, node: str, dst: str, pick: str) -> None:
    assert pick in TOPOLOGY.neighbors(node), (node, pick)
    assert pick in routing.next_hops(node, dst), (node, dst, pick)
    assert routing.distance(pick, dst) == routing.distance(node, dst) - 1
    assert frozenset((node, pick)) not in {
        frozenset(link) for link in routing.failed_links
    }


@pytest.mark.parametrize("policy", ["flowlet", "adaptive"])
@given(
    node=st.sampled_from(SWITCHES),
    dst=st.sampled_from(SERVERS),
    flow_hash=flow_hashes,
    now=times,
)
@settings(max_examples=60, deadline=None)
def test_policies_pick_attached_live_shortest_hop(policy, node, dst, flow_hash, now):
    routing = _policy(policy)
    pick = routing.select_next_hop(node, dst, flow_hash, now=now, port_load=lambda _: 0)
    _assert_on_live_shortest_path(routing, node, dst, pick)


@pytest.mark.parametrize("policy", ["ecmp", "flowlet", "adaptive"])
@given(node=st.sampled_from(SWITCHES), dst=st.sampled_from(SERVERS), flow_hash=flow_hashes)
@settings(max_examples=40, deadline=None)
def test_policies_respect_failed_links(policy, node, dst, flow_hash):
    routing = _policy(policy)
    routing.set_link_state(*REDUNDANT_LINK, up=False)
    assert routing.failed_links == [tuple(sorted(REDUNDANT_LINK))]
    pick = routing.select_next_hop(node, dst, flow_hash, now=0.0, port_load=lambda _: 0)
    _assert_on_live_shortest_path(routing, node, dst, pick)


@given(
    node=st.sampled_from(SWITCHES),
    dst=st.sampled_from(SERVERS),
    flow_hash=flow_hashes,
    now=times,
    loads=st.lists(st.integers(min_value=0, max_value=10**6), min_size=8, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_ecmp_unchanged_under_seam(node, dst, flow_hash, now, loads):
    """The seam is behavior-preserving for ECMP: time and load inputs
    must not perturb the hash-selected hop."""
    routing = EcmpRouting(TOPOLOGY)
    expected = routing.next_hop(node, dst, flow_hash)
    load_table = dict(zip(TOPOLOGY.neighbors(node), loads))
    pick = routing.select_next_hop(
        node, dst, flow_hash, now=now, port_load=lambda n: load_table.get(n, 0)
    )
    assert pick == expected


@given(src=st.sampled_from(SERVERS), dst=st.sampled_from(SERVERS), flow_hash=flow_hashes)
@settings(max_examples=40, deadline=None)
def test_canonical_paths_agree_across_policies(src, dst, flow_hash):
    """path() — what feature extraction and the fluid tier charge — is
    the ECMP path under every policy (salt-0 flowlet, zero-load adaptive)."""
    if src == dst:
        return
    expected = EcmpRouting(TOPOLOGY).path(src, dst, flow_hash)
    for policy in ("flowlet", "adaptive"):
        assert _policy(policy).path(src, dst, flow_hash) == expected


def test_flowlet_rehashes_only_after_gap():
    routing = FlowletRouting(TOPOLOGY, gap_s=1e-4)
    node, dst, flow_hash = "tor-c0-0", "server-c1-t0-s0", 12345
    first = routing.select_next_hop(node, dst, flow_hash, now=0.0)
    # Within the gap: same flowlet, same hop, no switch counted.
    assert routing.select_next_hop(node, dst, flow_hash, now=5e-5) == first
    assert routing.flowlet_switches == 0
    # Beyond the gap: a new flowlet may re-hash; the salt advances.
    routing.select_next_hop(node, dst, flow_hash, now=1.0)
    assert routing.flowlet_switches == 1
    assert routing._flowlets[(node, flow_hash)][1] == 1


def test_adaptive_prefers_least_loaded_port():
    routing = AdaptiveRouting(TOPOLOGY)
    node, dst = "tor-c0-0", "server-c1-t0-s0"
    hops = routing.next_hops(node, dst)
    assert len(hops) >= 2
    for target in hops:
        loads = {hop: 0 if hop == target else 10_000 for hop in hops}
        pick = routing.select_next_hop(
            node, dst, 7, now=0.0, port_load=lambda n: loads[n]
        )
        assert pick == target


def test_disconnection_raises_no_route_error():
    routing = EcmpRouting(TOPOLOGY)
    # Cut both ToR uplinks: the rack can no longer reach other racks.
    routing.set_link_state("tor-c0-0", "agg-c0-0", up=False)
    routing.set_link_state("tor-c0-0", "agg-c0-1", up=False)
    with pytest.raises(NoRouteError) as excinfo:
        routing.next_hop("tor-c0-0", "server-c1-t0-s0", 1)
    assert excinfo.value.node == "tor-c0-0"
    assert excinfo.value.dst == "server-c1-t0-s0"
    # NoRouteError keeps compatibility with bare KeyError handlers.
    assert isinstance(excinfo.value, KeyError)
    # Intra-rack traffic still routes.
    assert routing.next_hop("tor-c0-0", "server-c0-t0-s0", 1) == "server-c0-t0-s0"
    # Recovery restores the cut routes and counts its rebuilds.
    rebuilds = routing.table_rebuilds
    assert routing.set_link_state("tor-c0-0", "agg-c0-0", up=True)
    assert routing.table_rebuilds == rebuilds + 1
    routing.next_hop("tor-c0-0", "server-c1-t0-s0", 1)


def test_set_link_state_validates_and_dedupes():
    routing = EcmpRouting(TOPOLOGY)
    with pytest.raises(ValueError, match="no link"):
        routing.set_link_state("tor-c0-0", "core-0", up=False)
    assert routing.set_link_state(*REDUNDANT_LINK, up=False) is True
    # Re-failing a dead link (or re-raising a live one) is a no-op.
    assert routing.set_link_state(*REDUNDANT_LINK, up=False) is False
    assert routing.set_link_state(*REDUNDANT_LINK, up=True) is True
    assert routing.set_link_state(*REDUNDANT_LINK, up=True) is False
    assert routing.failed_links == []


def test_routing_config_validation():
    with pytest.raises(ValueError, match="unknown routing policy"):
        RoutingConfig(policy="spray")
    with pytest.raises(ValueError, match="flowlet_gap_s"):
        RoutingConfig(flowlet_gap_s=0.0)
    with pytest.raises(ValueError, match="unknown routing keys"):
        RoutingConfig.from_dict({"policy": "ecmp", "gap": 1.0})
    assert RoutingConfig.from_dict("adaptive").policy == "adaptive"
    config = RoutingConfig.from_dict({"policy": "flowlet", "flowlet_gap_s": 1e-3})
    assert make_routing(TOPOLOGY, config).gap_s == 1e-3
