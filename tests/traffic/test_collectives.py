"""Collective (AllReduce) workload generators.

Phase gating makes flow counts exact: a ring AllReduce of N ranks runs
2*(N-1) steps of N concurrent sends, a binary-tree AllReduce reduces up
and broadcasts down one flow per edge, and TP/PP phases precede the
AllReduce each iteration.  The tests pin those counts, the determinism
of the seeded streams, and the config validation surface.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentConfig, run_full_simulation
from repro.topology.clos import ClosParams
from repro.traffic.collectives import CollectiveConfig


def _run(collective: dict, duration_s: float = 0.02, seed: int = 5):
    config = ExperimentConfig(
        clos=ClosParams(clusters=2),
        load=0.05,
        duration_s=duration_s,
        seed=seed,
        collective=collective,
    )
    return run_full_simulation(config)


def test_ring_flow_count_is_exact():
    output = _run({"algorithm": "ring", "ranks": 4, "chunk_bytes": 20_000, "rounds": 2})
    summary = output.result.collective
    assert summary["algorithm"] == "ring"
    assert summary["rounds_completed"] == 2
    # 2 rounds x 4 ranks x 2*(4-1) gated steps.
    assert summary["flows_launched"] == 2 * 4 * 6
    assert summary["chunks_completed"] == summary["flows_launched"]
    assert summary["bytes_launched"] == summary["flows_launched"] * 20_000


def test_tree_flow_count_is_exact():
    output = _run({"algorithm": "tree", "ranks": 8, "chunk_bytes": 20_000, "rounds": 1})
    summary = output.result.collective
    # Reduce-up and broadcast-down each traverse the 7 tree edges once.
    assert summary["flows_launched"] == 14
    assert summary["rounds_completed"] == 1


def test_tp_pp_phases_precede_allreduce():
    output = _run({
        "algorithm": "ring",
        "ranks": 4,
        "chunk_bytes": 10_000,
        "rounds": 1,
        "tp_bytes": 5_000,
        "pp_bytes": 5_000,
    })
    summary = output.result.collective
    # 2 TP pairs x 2 directions + 3 PP stage hops + 4x6 ring sends.
    assert summary["flows_launched"] == 4 + 3 + 24
    assert summary["bytes_launched"] == 4 * 5_000 + 3 * 5_000 + 24 * 10_000


def test_dp_groups_run_independent_rings():
    output = _run({
        "algorithm": "ring",
        "ranks": 8,
        "dp_groups": 2,
        "chunk_bytes": 10_000,
        "rounds": 1,
    })
    summary = output.result.collective
    # Two independent 4-rank rings.
    assert summary["flows_launched"] == 2 * (4 * 6)
    assert summary["rounds_completed"] == 2
    assert summary["rounds_requested"] == 2


def test_collective_runs_are_deterministic():
    kwargs = {
        "algorithm": "ring",
        "ranks": 4,
        "chunk_bytes": 20_000,
        "rounds": 2,
        "compute_s": 3e-4,
        "compute_jitter": 0.5,
    }
    first = _run(kwargs)
    second = _run(kwargs)
    assert first.result.collective == second.result.collective
    assert first.result.fcts == second.result.fcts
    assert first.result.flows_started == second.result.flows_started


def test_compute_phase_delays_next_round():
    fast = _run({"algorithm": "ring", "ranks": 4, "chunk_bytes": 10_000, "rounds": 2})
    # A compute phase longer than the run leaves round 2 unstarted.
    slow = _run({
        "algorithm": "ring",
        "ranks": 4,
        "chunk_bytes": 10_000,
        "rounds": 2,
        "compute_s": 1.0,
    })
    assert fast.result.collective["rounds_completed"] == 2
    assert slow.result.collective["rounds_completed"] == 1
    assert slow.result.collective["flows_launched"] == fast.result.collective[
        "flows_launched"
    ] // 2


def test_collective_config_validation():
    with pytest.raises(ValueError, match="algorithm"):
        CollectiveConfig(algorithm="butterfly")
    with pytest.raises(ValueError, match="chunk_bytes"):
        CollectiveConfig(chunk_bytes=0)
    with pytest.raises(ValueError, match="rounds"):
        CollectiveConfig(rounds=0)
    with pytest.raises(ValueError, match="unknown collective keys"):
        CollectiveConfig.from_dict({"algorithm": "ring", "chunks": 3})
    with pytest.raises(TypeError):
        CollectiveConfig.from_dict("ring")


def test_workload_validates_against_topology():
    with pytest.raises(ValueError, match="ranks"):
        _run({"algorithm": "ring", "ranks": 64}, duration_s=0.001)
    with pytest.raises(ValueError, match="dp_groups"):
        _run({"algorithm": "ring", "ranks": 4, "dp_groups": 3}, duration_s=0.001)
