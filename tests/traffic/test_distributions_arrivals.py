"""Tests for flow-size distributions, arrivals, and load calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import (
    DATA_MINING_CDF,
    EmpiricalSizeDistribution,
    UNIFORM_SMALL_CDF,
    WEB_SEARCH_CDF,
    web_search_sizes,
)


class TestWebSearchDistribution:
    def test_cdf_well_formed(self):
        sizes = [s for s, _ in WEB_SEARCH_CDF]
        probs = [p for _, p in WEB_SEARCH_CDF]
        assert probs[0] == 0.0 and probs[-1] == 1.0
        assert sizes == sorted(sizes)
        assert probs == sorted(probs)

    def test_heavy_tail_properties(self):
        """The web-search workload: most flows small, most bytes big."""
        dist = web_search_sizes()
        assert dist.quantile(0.5) < 100_000  # median under 100 KB
        assert dist.quantile(0.99) > 5_000_000  # 99th over 5 MB
        assert dist.mean() > 10 * dist.quantile(0.5)

    def test_mean_matches_monte_carlo(self):
        dist = web_search_sizes()
        rng = np.random.default_rng(0)
        empirical = dist.sample(rng, 200_000).mean()
        assert empirical == pytest.approx(dist.mean(), rel=0.02)

    def test_samples_within_support(self):
        dist = web_search_sizes()
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, 10_000)
        assert samples.min() >= 1460
        assert samples.max() <= 20_000 * 1460

    def test_scalar_sample(self):
        dist = web_search_sizes()
        value = dist.sample(np.random.default_rng(2))
        assert isinstance(value, float) and value >= 1.0

    def test_quantile_bounds_validated(self):
        dist = web_search_sizes()
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    @given(q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_quantile_monotone(self, q):
        dist = web_search_sizes()
        assert dist.quantile(q) <= dist.quantile(min(q + 0.05, 1.0))


class TestOtherDistributions:
    def test_data_mining_valid(self):
        dist = EmpiricalSizeDistribution(DATA_MINING_CDF)
        assert dist.mean() > 0

    def test_uniform_small(self):
        dist = EmpiricalSizeDistribution(UNIFORM_SMALL_CDF)
        assert dist.mean() == pytest.approx((1460 + 14600) / 2)

    def test_invalid_cdfs_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution([(1.0, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution([(1.0, 0.1), (2.0, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution([(1.0, 0.0), (2.0, 0.5), (3.0, 0.4), (4.0, 1.0)])


class TestArrivals:
    def test_rate_calibration(self):
        """rate * mean_size * 8 == load * aggregate capacity."""
        rate = arrival_rate_for_load(0.5, num_servers=10, link_rate_bps=1e9, mean_flow_bytes=1e6)
        offered_bps = rate * 1e6 * 8
        assert offered_bps == pytest.approx(0.5 * 10 * 1e9)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            arrival_rate_for_load(0.0, 1, 1e9, 1e6)
        with pytest.raises(ValueError):
            arrival_rate_for_load(0.5, 1, 1e9, 0.0)

    def test_poisson_mean_gap(self):
        arrivals = PoissonArrivals(rate_per_s=1000.0)
        rng = np.random.default_rng(3)
        gaps = [arrivals.next_gap(rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.05)

    def test_arrival_times_bounded(self):
        arrivals = PoissonArrivals(rate_per_s=500.0)
        rng = np.random.default_rng(4)
        times = list(arrivals.arrival_times(rng, until=1.0))
        assert all(0 < t < 1.0 for t in times)
        assert len(times) == pytest.approx(500, rel=0.3)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
