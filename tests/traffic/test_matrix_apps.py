"""Tests for traffic matrices and the flow-generating application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.topology.clos import ClosParams, build_clos, server_name
from repro.traffic.apps import TrafficGenerator
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.distributions import EmpiricalSizeDistribution, UNIFORM_SMALL_CDF
from repro.traffic.matrix import IncastMatrix, PermutationMatrix, UniformMatrix


class TestUniformMatrix:
    def test_never_self(self, small_clos, rng):
        matrix = UniformMatrix(small_clos)
        for _ in range(500):
            src, dst = matrix.sample_pair(rng)
            assert src != dst

    def test_covers_all_servers(self, small_clos, rng):
        matrix = UniformMatrix(small_clos)
        sources = {matrix.sample_pair(rng)[0] for _ in range(2000)}
        assert len(sources) == 16

    def test_intra_cluster_bias(self, small_clos):
        rng = np.random.default_rng(9)
        matrix = UniformMatrix(small_clos, intra_cluster_fraction=1.0)
        for _ in range(200):
            src, dst = matrix.sample_pair(rng)
            assert small_clos.node(src).cluster == small_clos.node(dst).cluster

    def test_zero_intra_fraction_allows_remote(self, small_clos):
        rng = np.random.default_rng(10)
        matrix = UniformMatrix(small_clos, intra_cluster_fraction=0.0)
        clusters = {
            (small_clos.node(src).cluster, small_clos.node(dst).cluster)
            for src, dst in (matrix.sample_pair(rng) for _ in range(300))
        }
        assert any(a != b for a, b in clusters)

    def test_invalid_fraction(self, small_clos):
        with pytest.raises(ValueError):
            UniformMatrix(small_clos, intra_cluster_fraction=1.5)


class TestPermutationMatrix:
    def test_derangement(self, small_clos):
        rng = np.random.default_rng(11)
        matrix = PermutationMatrix(small_clos, rng)
        for server in matrix.servers:
            assert matrix._partner[server] != server

    def test_fixed_partner(self, small_clos):
        rng = np.random.default_rng(12)
        matrix = PermutationMatrix(small_clos, rng)
        pairs = {}
        for _ in range(500):
            src, dst = matrix.sample_pair(rng)
            assert pairs.setdefault(src, dst) == dst


class TestIncastMatrix:
    def test_all_to_sink(self, small_clos, rng):
        sink = server_name(0, 0, 0)
        matrix = IncastMatrix(small_clos, sink=sink)
        for _ in range(100):
            src, dst = matrix.sample_pair(rng)
            assert dst == sink and src != sink

    def test_default_sink(self, small_clos, rng):
        matrix = IncastMatrix(small_clos)
        _, dst = matrix.sample_pair(rng)
        assert dst == matrix.sink

    def test_bad_sink_rejected(self, small_clos):
        with pytest.raises(ValueError):
            IncastMatrix(small_clos, sink="tor-c0-0")


class TestTrafficGenerator:
    def _generator(self, topo, sim, net, **kwargs):
        return TrafficGenerator(
            sim,
            net,
            matrix=UniformMatrix(topo),
            sizes=EmpiricalSizeDistribution(UNIFORM_SMALL_CDF),
            arrivals=PoissonArrivals(rate_per_s=2000.0),
            **kwargs,
        )

    def test_flows_complete_and_fcts_recorded(self, small_clos):
        sim = Simulator(seed=5)
        net = Network(sim, small_clos, NetworkConfig())
        gen = self._generator(small_clos, sim, net)
        gen.start()
        sim.run(until=0.01)
        assert gen.flows_started > 5
        assert gen.flows_completed > 0
        assert len(gen.fct_monitor) == gen.flows_completed
        assert all(fct > 0 for fct in gen.completed_fcts())

    def test_deterministic_across_runs(self, small_clos):
        def run_once():
            sim = Simulator(seed=77)
            net = Network(sim, small_clos, NetworkConfig())
            gen = self._generator(small_clos, sim, net)
            gen.start()
            sim.run(until=0.005)
            return [(r.src, r.dst, r.size_bytes, r.start_time) for r in gen.flows]

        assert run_once() == run_once()

    def test_flow_filter_elides_but_keeps_workload_identical(self, small_clos):
        """Filtered runs see the same flow sequence for kept flows."""
        def run(flt):
            sim = Simulator(seed=42)
            net = Network(sim, small_clos, NetworkConfig())
            gen = self._generator(small_clos, sim, net, flow_filter=flt)
            gen.start()
            sim.run(until=0.005)
            return gen

        unfiltered = run(None)
        keep_cluster0 = run(
            lambda s, d: small_clos.node(s).cluster == 0 or small_clos.node(d).cluster == 0
        )
        assert keep_cluster0.flows_elided > 0
        kept = [
            (r.src, r.dst, r.size_bytes)
            for r in unfiltered.flows
            if small_clos.node(r.src).cluster == 0 or small_clos.node(r.dst).cluster == 0
        ]
        generated = [(r.src, r.dst, r.size_bytes) for r in keep_cluster0.flows]
        assert generated == kept

    def test_max_flows_cap(self, small_clos):
        sim = Simulator(seed=6)
        net = Network(sim, small_clos, NetworkConfig())
        gen = self._generator(small_clos, sim, net, max_flows=3)
        gen.start()
        sim.run(until=1.0)
        assert gen.flows_started + gen.flows_elided == 3

    def test_max_flows_counts_diverted_flows(self, small_clos):
        """Regression: flows claimed by a dispatch hook (the cascade's
        fluid tier) must count against max_flows — omitting them made
        capped runs generate arrivals forever."""
        diverted = []

        def dispatch(src, dst, size):
            take = len(diverted) % 2 == 0  # claim every other arrival
            if take:
                diverted.append((src, dst, size))
            return take

        sim = Simulator(seed=6)
        net = Network(sim, small_clos, NetworkConfig())
        gen = self._generator(
            small_clos, sim, net, max_flows=6, flow_dispatch=dispatch
        )
        gen.start()
        sim.run(until=5.0)
        assert gen.flows_diverted == len(diverted) > 0
        assert gen.flows_started + gen.flows_elided + gen.flows_diverted == 6

    def test_goodput_accounting(self, small_clos):
        sim = Simulator(seed=8)
        net = Network(sim, small_clos, NetworkConfig())
        gen = self._generator(small_clos, sim, net, max_flows=5)
        gen.start()
        sim.run(until=2.0)
        assert gen.flows_completed == 5
        assert gen.goodput_bytes() == sum(r.size_bytes for r in gen.flows)
