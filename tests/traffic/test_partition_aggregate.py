"""Tests for the partition-aggregate workload generator."""

from __future__ import annotations

import pytest

from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.config import TcpConfig
from repro.traffic.partition_aggregate import PartitionAggregateGenerator


def _run(small_clos, fanout=4, response_bytes=20_000, max_queries=5,
         queue_capacity=150_000, until=2.0, rate=500.0):
    sim = Simulator(seed=55)
    net = Network(
        sim, small_clos,
        config=NetworkConfig(
            tcp=TcpConfig(min_rto_s=0.01),
            queue_capacity_bytes=queue_capacity,
        ),
    )
    gen = PartitionAggregateGenerator(
        sim, net, queries_per_s=rate, fanout=fanout,
        response_bytes=response_bytes, max_queries=max_queries,
    )
    gen.start()
    sim.run(until=until)
    return gen, net, sim


class TestPartitionAggregate:
    def test_queries_complete(self, small_clos):
        gen, _, _ = _run(small_clos)
        assert gen.queries_completed == 5
        for query in gen.queries:
            assert query.qct is not None and query.qct > 0
            assert query.responses_done == 4
            assert len(query.response_fcts) == 4

    def test_workers_distinct_and_exclude_root(self, small_clos):
        gen, _, _ = _run(small_clos)
        for query in gen.queries:
            assert len(set(query.workers)) == len(query.workers)
            assert query.root not in query.workers

    def test_qct_at_least_slowest_response(self, small_clos):
        """QCT covers request + response; it must exceed any single
        response FCT."""
        gen, _, _ = _run(small_clos)
        for query in gen.queries:
            assert query.qct >= max(query.response_fcts)

    def test_straggler_ratio_defined(self, small_clos):
        gen, _, _ = _run(small_clos)
        ratios = [q.straggler_ratio for q in gen.queries]
        assert all(r is not None and r >= 1.0 for r in ratios)

    def test_high_fanout_incast_drops(self, small_clos):
        """Wide fan-in with shallow sink buffers: the responses collide
        at the root's access link — the Section 2.1 mechanism."""
        gen, net, _ = _run(
            small_clos, fanout=14, response_bytes=100_000,
            max_queries=3, queue_capacity=20_000, until=5.0, rate=2000.0,
        )
        assert gen.queries_completed == 3  # TCP still recovers
        assert net.total_drops > 20

    def test_qct_monitor_matches_completions(self, small_clos):
        gen, _, _ = _run(small_clos)
        assert len(gen.qct_monitor) == gen.queries_completed

    def test_validation(self, small_clos):
        sim = Simulator()
        net = Network(sim, small_clos)
        with pytest.raises(ValueError):
            PartitionAggregateGenerator(sim, net, queries_per_s=0.0, fanout=2,
                                        response_bytes=1000)
        with pytest.raises(ValueError):
            PartitionAggregateGenerator(sim, net, queries_per_s=1.0, fanout=16,
                                        response_bytes=1000)

    def test_deterministic(self, small_clos):
        gen1, _, _ = _run(small_clos)
        gen2, _, _ = _run(small_clos)
        assert gen1.completed_qcts() == gen2.completed_qcts()
