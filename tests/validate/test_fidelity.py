"""Unit tests for the fidelity metrics (distances, macro timelines)."""

from __future__ import annotations

import pytest

from repro.core.macro import MacroCalibration, MacroState
from repro.validate import (
    MACRO_STATE_NAMES,
    FidelityReport,
    compare_samples,
    macro_agreement,
    macro_timeline,
    rate_delta,
    render_report,
)

_CAL = MacroCalibration(latency_low_s=1e-4, drop_rate_high=0.05)


class TestCompareSamples:
    def test_identical_distributions(self):
        samples = [1e-3, 2e-3, 3e-3, 4e-3]
        result = compare_samples(samples, list(samples))
        assert result["ks"] == 0.0
        assert result["wasserstein"] == pytest.approx(0.0, abs=1e-12)
        assert result["full_samples"] == result["hybrid_samples"] == 4

    def test_disjoint_distributions(self):
        result = compare_samples([1.0, 1.1], [5.0, 5.1])
        assert result["ks"] == 1.0
        assert result["wasserstein"] == pytest.approx(4.0, rel=1e-6)

    def test_empty_side_yields_none_not_crash(self):
        result = compare_samples([], [1.0])
        assert result["ks"] is None and result["wasserstein"] is None
        assert result["full_mean"] is None
        assert result["hybrid_mean"] == 1.0


class TestMacroTimeline:
    def test_length_matches_duration(self):
        states = macro_timeline([], _CAL, duration_s=0.01, bucket_s=0.001)
        assert len(states) == 10
        assert all(s == MacroState.MINIMAL.value for s in states)

    def test_congested_buckets_classified(self):
        # Latencies above threshold and heavy drops in bucket 1.
        outcomes = [(0.0015 + i * 1e-5, 5e-4, i % 2 == 0) for i in range(20)]
        states = macro_timeline(outcomes, _CAL, duration_s=0.02, bucket_s=0.001)
        assert len(states) == 20
        assert states[1] == MacroState.HIGH.value
        # The idle tail decays the drop EMA away from HIGH.
        assert states[-1] != MacroState.HIGH.value

    def test_unsorted_input_replayed_in_time_order(self):
        outcomes = [(0.0025, 5e-4, True), (0.0005, 5e-5, False), (0.0015, 2e-4, False)]
        forward = macro_timeline(outcomes, _CAL, duration_s=0.003, bucket_s=0.001)
        backward = macro_timeline(outcomes[::-1], _CAL, duration_s=0.003, bucket_s=0.001)
        assert forward == backward

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValueError):
            macro_timeline([], _CAL, duration_s=0.01, bucket_s=0.0)


class TestMacroAgreement:
    def test_perfect_agreement(self):
        timeline = [1, 2, 3, 4, 1]
        result = macro_agreement(timeline, list(timeline))
        assert result["agreement"] == 1.0
        assert result["buckets"] == 5
        assert sum(result["confusion"][i][i] for i in range(4)) == 5

    def test_confusion_off_diagonal(self):
        result = macro_agreement([1, 1, 3], [1, 2, 3])
        assert result["agreement"] == pytest.approx(2 / 3)
        assert result["confusion"][0][1] == 1  # truth MINIMAL, hybrid INCREASING
        assert result["states"] == list(MACRO_STATE_NAMES)

    def test_empty_timelines(self):
        result = macro_agreement([], [])
        assert result["agreement"] is None
        assert result["buckets"] == 0


def _report(violations=0):
    return FidelityReport(
        fct=compare_samples([1e-3, 2e-3], [1e-3, 3e-3]),
        latency=compare_samples([1e-5, 2e-5], [1e-5, 2e-5]),
        drop_rate=rate_delta(0.01, 0.02),
        throughput=rate_delta(1000.0, 900.0),
        macro=macro_agreement([1, 2], [1, 2]),
        invariants={
            "total": violations,
            "counts": {},
            "violations": (
                [{"invariant": "fcfs", "time": 0.1, "detail": "oops"}]
                if violations
                else []
            ),
        },
    )


class TestReport:
    def test_to_dict_json_serializable(self):
        import json

        payload = _report().to_dict()
        assert set(payload) == {
            "fct", "latency", "drop_rate", "throughput", "macro", "invariants"
        }
        json.dumps(payload)

    def test_violation_count_exposed(self):
        assert _report().invariant_violations == 0
        assert _report(violations=3).invariant_violations == 3

    def test_render_mentions_all_sections(self):
        text = render_report(_report())
        for token in ("fct_s", "latency_s", "drop_rate", "flows_per_s",
                      "macro-state agreement", "invariant violations: 0"):
            assert token in text

    def test_render_lists_violations(self):
        text = render_report(_report(violations=1))
        assert "invariant violations: 1" in text
        assert "[fcfs]" in text and "oops" in text
