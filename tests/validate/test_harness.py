"""End-to-end tests of the differential fidelity harness."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ExperimentConfig
from repro.topology.clos import ClosParams
from repro.validate import ValidateConfig, run_differential_pair

_PAIR_CONFIG = ExperimentConfig(
    clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=17
)


@pytest.fixture(scope="module")
def pair(trained_bundle):
    """One scored differential pair shared by the module's tests."""
    return run_differential_pair(_PAIR_CONFIG, trained_bundle)


class TestValidateConfig:
    def test_region_must_be_approximated(self):
        with pytest.raises(ValueError, match="region_cluster"):
            ValidateConfig(region_cluster=0, full_cluster=0)

    def test_region_must_exist(self, trained_bundle):
        with pytest.raises(ValueError, match="region_cluster"):
            run_differential_pair(
                _PAIR_CONFIG, trained_bundle, validate=ValidateConfig(region_cluster=9)
            )

    def test_hybrid_config_carries_matched_workload_default(self):
        assert ValidateConfig().hybrid_config().elide_remote_traffic is False


class TestDifferentialPair:
    def test_both_sides_ran(self, pair):
        assert pair.full.events_executed > 0
        assert pair.hybrid.events_executed > 0
        assert pair.hybrid.model_packets > 0
        # The hybrid elides fabric events; same workload, fewer events.
        assert pair.hybrid.events_executed < pair.full.events_executed

    def test_outcome_streams_collected(self, pair):
        assert len(pair.full_outcomes) > 0
        assert len(pair.hybrid_outcomes) > 0
        assert len(pair.hybrid_outcomes) == pair.hybrid_sim.models[1].packets_handled

    def test_report_complete(self, pair):
        report = pair.report
        assert report.latency["full_samples"] > 0
        assert report.latency["hybrid_samples"] > 0
        assert report.latency["ks"] is not None
        assert report.latency["wasserstein"] is not None
        assert report.macro["buckets"] == 4  # 4 ms at the 1 ms bucket
        assert 0.0 <= sum(report.drop_rate[k] >= 0 for k in ("full", "hybrid"))

    def test_zero_invariant_violations(self, pair):
        pair.checker.assert_clean()
        assert pair.report.invariant_violations == 0

    def test_report_is_json_serializable(self, pair):
        import json

        json.dumps(pair.report.to_dict())

    def test_deterministic(self, trained_bundle, pair):
        """Same pair, run again: byte-identical scores (the harness
        draws everything from seeds and simulated time)."""
        again = run_differential_pair(_PAIR_CONFIG, trained_bundle)
        first = pair.report.to_dict()
        second = again.report.to_dict()
        assert first == second

    def test_conservation_checked_on_every_model(self, pair):
        for model in pair.hybrid_sim.models.values():
            assert (
                model.packets_dropped + model.packets_delivered
                == model.packets_handled
            )
