"""Unit tests for the runtime invariant checker."""

from __future__ import annotations

import pytest

from repro.core.cluster_model import MAX_REGION_LATENCY_S, MIN_REGION_LATENCY_S
from repro.des.errors import SchedulingError
from repro.des.kernel import Simulator
from repro.validate import INVARIANTS, InvariantChecker


class _FakeCluster:
    def __init__(self, name, handled, dropped, delivered):
        self.name = name
        self.packets_handled = handled
        self.packets_dropped = dropped
        self.packets_delivered = delivered


class TestRecording:
    def test_counts_and_detail(self):
        checker = InvariantChecker()
        checker.record("fcfs", 1.0, "out of order")
        checker.record("fcfs", 2.0, "again")
        assert checker.counts["fcfs"] == 2
        assert checker.total == 2
        assert checker.violations[0].invariant == "fcfs"
        assert checker.violations[0].time == 1.0

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker().record("telepathy", 0.0, "?")

    def test_detail_bounded_counts_exact(self):
        checker = InvariantChecker(max_recorded=3)
        for i in range(10):
            checker.record("causality", float(i), f"v{i}")
        assert len(checker.violations) == 3
        assert checker.counts["causality"] == 10

    def test_summary_shape(self):
        checker = InvariantChecker()
        checker.record("latency_bounds", 0.5, "too big")
        summary = checker.summary()
        assert summary["total"] == 1
        assert set(summary["counts"]) == set(INVARIANTS)
        assert summary["violations"][0]["detail"] == "too big"

    def test_assert_clean(self):
        checker = InvariantChecker()
        checker.assert_clean()  # no violations: passes
        checker.record("conservation", 0.0, "lost one")
        with pytest.raises(AssertionError, match="conservation"):
            checker.assert_clean()

    def test_obs_counters(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(enabled=True)
        checker = InvariantChecker(metrics=metrics)
        checker.record("fcfs", 0.0, "a")
        checker.record("fcfs", 0.0, "b")
        checker.record("causality", 0.0, "c")
        counters = {
            (c["name"], c["labels"]["invariant"]): c["value"]
            for c in metrics.snapshot()["counters"]
            if c["name"] == "validate.invariant_violations"
        }
        assert counters[("validate.invariant_violations", "fcfs")] == 2
        assert counters[("validate.invariant_violations", "causality")] == 1


class TestSimulatorAttachment:
    def test_past_scheduling_recorded_before_kernel_raises(self):
        sim = Simulator(seed=1)
        checker = InvariantChecker().attach_simulator(sim)
        sim.schedule(0.002, lambda: None)
        sim.run()
        assert sim.now == 0.002
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.001, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule(-1e-9, lambda: None)
        assert checker.counts["causality"] == 2

    def test_legal_scheduling_untouched(self):
        sim = Simulator(seed=1)
        checker = InvariantChecker().attach_simulator(sim)
        fired = []
        sim.schedule(0.001, lambda: fired.append(sim.now))
        sim.schedule_at(0.002, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.001, 0.002]
        assert checker.total == 0


class TestHotPathChecks:
    def test_latency_bounds(self):
        checker = InvariantChecker()
        checker.check_latency("approx-c1", 0.0, MIN_REGION_LATENCY_S)
        checker.check_latency("approx-c1", 0.0, MAX_REGION_LATENCY_S)
        assert checker.total == 0
        checker.check_latency("approx-c1", 0.0, MIN_REGION_LATENCY_S / 2)
        checker.check_latency("approx-c1", 0.0, MAX_REGION_LATENCY_S * 2)
        assert checker.counts["latency_bounds"] == 2

    def test_fcfs_monotone_per_target(self):
        checker = InvariantChecker()
        checker.check_delivery("approx-c1", "server-a", 0.0, 1e-3)
        checker.check_delivery("approx-c1", "server-a", 0.0, 2e-3)
        checker.check_delivery("approx-c1", "server-b", 0.0, 1.5e-3)  # other queue
        assert checker.total == 0
        checker.check_delivery("approx-c1", "server-a", 0.0, 1e-3)  # regression
        assert checker.counts["fcfs"] == 1

    def test_delivery_causality(self):
        checker = InvariantChecker()
        checker.check_delivery("approx-c1", "server-a", 5e-3, 4e-3)
        assert checker.counts["causality"] == 1


class TestConservation:
    def test_balanced_clusters_clean(self):
        checker = InvariantChecker()
        checker.watch_cluster(_FakeCluster("approx-c1", 10, 3, 7))
        checker.watch_cluster(_FakeCluster("approx-c2", 0, 0, 0))
        checker.check_conservation(now=1.0)
        assert checker.total == 0

    def test_lost_packet_detected(self):
        checker = InvariantChecker()
        checker.watch_cluster(_FakeCluster("approx-c1", 10, 3, 6))
        checker.check_conservation(now=1.0)
        assert checker.counts["conservation"] == 1
        assert "approx-c1" in checker.violations[0].detail
