"""Windowed online scoring: sliding windows and score_region."""

from __future__ import annotations

import pytest

from repro.validate import RegionWindows, SlidingWindow, score_region


class TestSlidingWindow:
    def test_add_and_values(self):
        window = SlidingWindow()
        window.add(0.0, 1.0)
        window.add(1.0, 2.0)
        assert window.values() == [1.0, 2.0]
        assert len(window) == 2

    def test_evict_before_drops_old_samples(self):
        window = SlidingWindow()
        for t in range(5):
            window.add(float(t), float(t))
        window.evict_before(2.0)
        assert window.values() == [2.0, 3.0, 4.0]

    def test_evict_keeps_sample_at_cutoff(self):
        window = SlidingWindow()
        window.add(1.0, 10.0)
        window.evict_before(1.0)
        assert len(window) == 1


class TestRegionWindows:
    def test_record_fct(self):
        windows = RegionWindows()
        windows.record_fct(0.1, 2e-3)
        assert windows.fct.values() == [2e-3]

    def test_outcome_tap_splits_delivery_and_drop(self):
        windows = RegionWindows()
        windows.record_outcome(0.1, 5e-6, False)
        windows.record_outcome(0.2, None, True)
        windows.record_outcome(0.3, 6e-6, False)
        assert windows.delivered == 2
        assert windows.dropped == 1
        assert windows.drop_rate() == pytest.approx(1 / 3)

    def test_drop_rate_empty_is_zero(self):
        assert RegionWindows().drop_rate() == 0.0

    def test_evict_before_applies_to_all_streams(self):
        windows = RegionWindows()
        windows.record_fct(0.0, 1e-3)
        windows.record_outcome(0.0, 1e-6, False)
        windows.record_outcome(0.0, None, True)
        windows.record_fct(1.0, 2e-3)
        windows.evict_before(0.5)
        assert len(windows.fct) == 1
        assert windows.delivered == 0
        assert windows.dropped == 0


class TestScoreRegion:
    def _filled(self, values, times=None):
        windows = RegionWindows()
        for i, v in enumerate(values):
            windows.record_fct(times[i] if times else float(i), v)
        return windows

    def test_identical_windows_score_zero(self):
        reference = self._filled([1e-3, 2e-3, 3e-3, 4e-3])
        region = self._filled([1e-3, 2e-3, 3e-3, 4e-3])
        scores = score_region(reference, region, horizon_s=1.0, min_samples=4)
        assert scores["scoreable"]
        assert scores["fct"]["ks"] == pytest.approx(0.0)
        assert scores["fct"]["wasserstein"] == pytest.approx(0.0)
        assert scores["drop_rate"]["delta"] == 0.0
        assert scores["throughput"]["delta"] == 0.0

    def test_disjoint_windows_score_one(self):
        reference = self._filled([1e-3] * 8)
        region = self._filled([5e-3] * 8)
        scores = score_region(reference, region, horizon_s=1.0)
        assert scores["fct"]["ks"] == pytest.approx(1.0)

    def test_starved_window_not_scoreable(self):
        reference = self._filled([1e-3] * 8)
        region = self._filled([1e-3])
        scores = score_region(reference, region, horizon_s=1.0, min_samples=4)
        assert not scores["scoreable"]

    def test_throughput_uses_horizon(self):
        reference = self._filled([1e-3] * 10)
        region = self._filled([1e-3] * 5)
        scores = score_region(reference, region, horizon_s=2.0, min_samples=1)
        assert scores["throughput"]["full"] == pytest.approx(5.0)
        assert scores["throughput"]["hybrid"] == pytest.approx(2.5)

    def test_non_positive_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon_s"):
            score_region(RegionWindows(), RegionWindows(), horizon_s=0.0)
